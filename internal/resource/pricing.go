package resource

import (
	"fmt"
	"math"

	"ecosched/internal/sim"
)

// PricingModel maps a node's performance rate to a per-time-unit price.
// The paper's generator uses a performance-exponential base price with a
// ±25% random spread: price ∈ [0.75p, 1.25p] with p = 1.7^performance.
type PricingModel interface {
	// BasePrice returns the deterministic price for a node of the given
	// performance before any random spread.
	BasePrice(performance float64) sim.Money
	// Sample draws a concrete price for a node of the given performance.
	Sample(rng *sim.RNG, performance float64) sim.Money
}

// ExponentialPricing is the paper's Section 5 pricing model:
// p = Base^performance, sampled uniformly in [LowFactor*p, HighFactor*p].
type ExponentialPricing struct {
	// Base is the exponent base; the paper uses 1.7.
	Base float64
	// LowFactor and HighFactor bound the uniform spread around the base
	// price; the paper uses 0.75 and 1.25.
	LowFactor  float64
	HighFactor float64
}

// PaperPricing returns the exact Section 5 pricing model.
func PaperPricing() ExponentialPricing {
	return ExponentialPricing{Base: 1.7, LowFactor: 0.75, HighFactor: 1.25}
}

// BasePrice implements PricingModel.
func (e ExponentialPricing) BasePrice(performance float64) sim.Money {
	return sim.Money(math.Pow(e.Base, performance))
}

// Sample implements PricingModel.
func (e ExponentialPricing) Sample(rng *sim.RNG, performance float64) sim.Money {
	p := e.BasePrice(performance)
	return rng.MoneyBetween(p*sim.Money(e.LowFactor), p*sim.Money(e.HighFactor))
}

// Validate reports an error for degenerate pricing parameters.
func (e ExponentialPricing) Validate() error {
	if e.Base <= 0 {
		return fmt.Errorf("resource: pricing base must be positive, got %v", e.Base)
	}
	if e.LowFactor <= 0 || e.HighFactor < e.LowFactor {
		return fmt.Errorf("resource: pricing spread [%v, %v] invalid", e.LowFactor, e.HighFactor)
	}
	return nil
}

// FlatPricing charges the same price regardless of performance. Useful for
// the homogeneous backfilling baseline and for tests.
type FlatPricing struct {
	Price sim.Money
}

// BasePrice implements PricingModel.
func (f FlatPricing) BasePrice(float64) sim.Money { return f.Price }

// Sample implements PricingModel.
func (f FlatPricing) Sample(*sim.RNG, float64) sim.Money { return f.Price }

// LinearPricing charges Slope*performance + Intercept; a simple alternative
// supply curve used in pricing ablations.
type LinearPricing struct {
	Slope     sim.Money
	Intercept sim.Money
}

// BasePrice implements PricingModel.
func (l LinearPricing) BasePrice(performance float64) sim.Money {
	return l.Slope*sim.Money(performance) + l.Intercept
}

// Sample implements PricingModel.
func (l LinearPricing) Sample(_ *sim.RNG, performance float64) sim.Money {
	return l.BasePrice(performance)
}

// DemandAdjustedPricing wraps another model and scales its prices by a
// load-dependent factor — the supply-and-demand mechanism sketched in the
// paper's future-work section. Utilization 0 maps to MinFactor, utilization 1
// to MaxFactor, linearly in between.
type DemandAdjustedPricing struct {
	Inner       PricingModel
	Utilization float64 // current fraction of busy capacity in [0, 1]
	MinFactor   float64 // price factor at zero utilization (e.g. 0.8)
	MaxFactor   float64 // price factor at full utilization (e.g. 1.5)
}

func (d DemandAdjustedPricing) factor() sim.Money {
	u := d.Utilization
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return sim.Money(d.MinFactor + (d.MaxFactor-d.MinFactor)*u)
}

// BasePrice implements PricingModel.
func (d DemandAdjustedPricing) BasePrice(performance float64) sim.Money {
	return d.Inner.BasePrice(performance) * d.factor()
}

// Sample implements PricingModel.
func (d DemandAdjustedPricing) Sample(rng *sim.RNG, performance float64) sim.Money {
	return d.Inner.Sample(rng, performance) * d.factor()
}
