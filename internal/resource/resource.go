// Package resource models the computational nodes of the virtual
// organization: their relative performance rates, their per-time-unit usage
// prices, and groupings into administrative domains (clusters). The paper's
// environment is heterogeneous and non-dedicated — nodes differ in speed and
// price, and owners run local jobs on them alongside the VO's global flow.
package resource

import (
	"fmt"
	"math"
	"sort"

	"ecosched/internal/sim"
)

// EtalonPerformance is the reference performance rate. Job wall times in a
// resource request are stated for a node of this rate, so a task declared to
// take t ticks runs in t / P ticks on a node with performance P (Section 6 of
// the paper: "the job execution time t/P").
const EtalonPerformance = 1.0

// NodeID identifies a node within a Pool.
type NodeID int

// Node is a single computational resource (a processor/core in the paper's
// terms). A slot is always bound to exactly one node.
type Node struct {
	// ID is the node's index within its pool.
	ID NodeID
	// Name is a human-readable label such as "cpu4" used in charts.
	Name string
	// Performance is the node's relative speed; EtalonPerformance = 1.
	// A task with etalon wall time t completes in ceil(t/Performance) ticks.
	Performance float64
	// Price is the owner's charge per time unit of slot usage.
	Price sim.Money
	// Domain is the administrative domain (cluster) the node belongs to.
	Domain string
	// Attrs are the node's non-performance characteristics (RAM, disk,
	// OS, capability tags) matched against request requirements.
	Attrs Attributes
}

// Validate reports an error when the node's attributes are unusable for
// scheduling (non-positive performance, negative or non-finite price).
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("resource: nil node")
	}
	if n.Performance <= 0 || math.IsNaN(n.Performance) || math.IsInf(n.Performance, 0) {
		return fmt.Errorf("resource: node %s has invalid performance %v", n.Label(), n.Performance)
	}
	if n.Price < 0 || !n.Price.IsFinite() {
		return fmt.Errorf("resource: node %s has invalid price %v", n.Label(), n.Price)
	}
	if err := n.Attrs.Validate(); err != nil {
		return fmt.Errorf("resource: node %s: %w", n.Label(), err)
	}
	return nil
}

// Satisfies reports whether the node meets the attribute requirements.
func (n *Node) Satisfies(req Requirements) bool {
	return req.SatisfiedBy(n.Attrs)
}

// Label returns the node's display name, falling back to its numeric ID.
func (n *Node) Label() string {
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("node%d", n.ID)
}

// Runtime returns the execution time on this node of a task whose wall time
// is stated for the etalon performance. The result is rounded up to whole
// ticks and is never less than one tick for a positive workload.
func (n *Node) Runtime(etalonTime sim.Duration) sim.Duration {
	if etalonTime <= 0 {
		return 0
	}
	d := sim.Duration(math.Ceil(float64(etalonTime) / n.Performance))
	if d < 1 {
		d = 1
	}
	return d
}

// UsageCost returns the cost of occupying this node for d ticks.
func (n *Node) UsageCost(d sim.Duration) sim.Money {
	if d <= 0 {
		return 0
	}
	return n.Price * sim.Money(d)
}

// PriceQuality returns the node's price/quality ratio C/P discussed in
// Section 6. Lower values are better deals for the user.
func (n *Node) PriceQuality() float64 {
	return float64(n.Price) / n.Performance
}

// Meets reports whether the node satisfies a minimum performance requirement.
func (n *Node) Meets(minPerformance float64) bool {
	return n.Performance >= minPerformance
}

// String renders the node with its key economic attributes.
func (n *Node) String() string {
	return fmt.Sprintf("%s(P=%.2f, C=%v)", n.Label(), n.Performance, n.Price)
}

// Pool is an immutable collection of nodes indexed by NodeID. All slot lists
// reference nodes by pointer into a pool, so node identity comparisons are
// pointer comparisons.
type Pool struct {
	nodes []*Node
}

// NewPool builds a pool from the given nodes, assigning sequential IDs when
// nodes carry the zero ID. It validates every node.
func NewPool(nodes []*Node) (*Pool, error) {
	p := &Pool{nodes: make([]*Node, 0, len(nodes))}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("resource: nil node at index %d", i)
		}
		if err := n.Validate(); err != nil {
			return nil, err
		}
		n.ID = NodeID(i)
		p.nodes = append(p.nodes, n)
	}
	return p, nil
}

// MustNewPool is NewPool that panics on error; intended for tests and
// hand-built example environments.
func MustNewPool(nodes []*Node) *Pool {
	p, err := NewPool(nodes)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the number of nodes in the pool.
func (p *Pool) Size() int { return len(p.nodes) }

// Node returns the node with the given ID, or nil when out of range.
func (p *Pool) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(p.nodes) {
		return nil
	}
	return p.nodes[id]
}

// Nodes returns the pool's nodes in ID order. The returned slice is shared;
// callers must not mutate it.
func (p *Pool) Nodes() []*Node { return p.nodes }

// ByName returns the node with the given display name, or nil.
func (p *Pool) ByName(name string) *Node {
	for _, n := range p.nodes {
		if n.Label() == name {
			return n
		}
	}
	return nil
}

// Matching returns the nodes meeting a minimum performance requirement,
// in ID order.
func (p *Pool) Matching(minPerformance float64) []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Meets(minPerformance) {
			out = append(out, n)
		}
	}
	return out
}

// Domains returns the distinct domain names present in the pool, sorted.
func (p *Pool) Domains() []string {
	seen := map[string]bool{}
	for _, n := range p.nodes {
		seen[n.Domain] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// TotalPerformance returns the sum of node performance rates — a rough
// capacity measure used by workload calibration.
func (p *Pool) TotalPerformance() float64 {
	var sum float64
	for _, n := range p.nodes {
		sum += n.Performance
	}
	return sum
}
