// Package shard partitions the grid's nodes into K deterministic shards and
// runs the alternative search as a cross-shard federation: each shard owns
// the live vacant store and slot index of its own node set, candidate
// production fans out across shards, and a combination layer merges per-job
// candidates back into canonical order before window assembly — so results
// stay byte-identical to the unsharded search for every K (the sharding
// differential suite pins this).
//
// The assignment hashes each node's stable label, so it is a pure function of
// the node itself: independent of input order, unchanged when other nodes
// join or leave, and identical across processes and runs. K=1 degenerates to
// today's single-store behavior.
package shard

import (
	"ecosched/internal/resource"
)

// Partition is a deterministic, stable assignment of nodes to K shards.
type Partition struct {
	k int
}

// New returns a partition into k shards; k < 1 is clamped to 1 (the
// unsharded degenerate case).
func New(k int) Partition {
	if k < 1 {
		k = 1
	}
	return Partition{k: k}
}

// K returns the shard count.
func (p Partition) K() int { return p.k }

// FNV-64a over the node label: deterministic across runs and processes
// (unlike Go's runtime map hash), cheap, and well-mixed for short strings.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Of returns the shard owning the node, in [0, K). The assignment depends
// only on the node's label, so it is stable under permutation of the node
// set and under adding or removing other nodes.
func (p Partition) Of(n *resource.Node) int {
	if p.k <= 1 {
		return 0
	}
	var h uint64 = offset64
	for _, b := range []byte(n.Label()) {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(p.k))
}

// Split groups the pool's nodes by shard, preserving pool order within each
// shard. Shards may be empty — a partition of few nodes into many shards is
// legal and the search treats an empty shard as an immediately exhausted
// candidate stream.
func (p Partition) Split(pool *resource.Pool) [][]*resource.Node {
	groups := make([][]*resource.Node, p.k)
	for _, n := range pool.Nodes() {
		i := p.Of(n)
		groups[i] = append(groups[i], n)
	}
	return groups
}
