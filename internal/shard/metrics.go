package shard

import (
	"fmt"

	"ecosched/internal/alloc"
	"ecosched/internal/metrics"
	"ecosched/internal/slot"
)

// Metrics is the sharded search's observability family, under "shard/".
// All methods are nil-safe; a disabled registry costs nothing. Like every
// instrument in this repo, the counters are deterministic work units, never
// wall-clock readings.
type Metrics struct {
	// Count is the configured shard count.
	Count *metrics.Gauge
	// Slots holds one gauge per shard: the slots its published view carried
	// at the last publication.
	Slots []*metrics.Gauge
	// ScanSlots holds one counter per shard: total ranks its candidate
	// cursor walked across all scans.
	ScanSlots []*metrics.Counter
	// MergeCandidates counts candidates consumed by the cross-shard merge.
	MergeCandidates *metrics.Counter
	// MergeRounds counts producer refill rounds.
	MergeRounds *metrics.Counter
	// CriticalPath accumulates the scan-phase critical path: per refill
	// round, the maximum ranks walked by any one shard. With K producers on
	// K cores this is the wall-clock-proportional production cost.
	CriticalPath *metrics.Counter
	// Imbalance gauges the last publication's skew: max shard slots over
	// mean shard slots, ×1000 (1000 = perfectly balanced).
	Imbalance *metrics.Gauge
}

// NewMetrics resolves the shard family for k shards in the registry.
// A nil registry returns nil, which every method accepts.
func NewMetrics(r *metrics.Registry, k int) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		Count:           r.Gauge("shard/count"),
		Slots:           make([]*metrics.Gauge, k),
		ScanSlots:       make([]*metrics.Counter, k),
		MergeCandidates: r.Counter("shard/merge/candidates_total"),
		MergeRounds:     r.Counter("shard/merge/rounds_total"),
		CriticalPath:    r.Counter("shard/scan_critical_path_total"),
		Imbalance:       r.Gauge("shard/imbalance_x1000"),
	}
	m.Count.Set(int64(k))
	for i := 0; i < k; i++ {
		m.Slots[i] = r.Gauge(fmt.Sprintf("shard/%d/slots", i))
		m.ScanSlots[i] = r.Counter(fmt.Sprintf("shard/%d/scan_slots_total", i))
	}
	return m
}

// Published records a publication of per-shard vacant views: each shard's
// slot gauge and the imbalance of the split.
func (m *Metrics) Published(views []*slot.Index) {
	if m == nil {
		return
	}
	total, max := int64(0), int64(0)
	for i, v := range views {
		n := int64(v.Len())
		if i < len(m.Slots) {
			m.Slots[i].Set(n)
		}
		total += n
		if n > max {
			max = n
		}
	}
	if len(views) > 0 && total > 0 {
		mean := float64(total) / float64(len(views))
		m.Imbalance.Set(int64(float64(max) / mean * 1000))
	}
}

// ObserveSearch folds one search's ShardWork accounting into the counters.
func (m *Metrics) ObserveSearch(work *alloc.ShardWork) {
	if m == nil || work == nil {
		return
	}
	for i, n := range work.ScanSlots {
		if i < len(m.ScanSlots) {
			m.ScanSlots[i].Add(n)
		}
	}
	m.MergeCandidates.Add(work.Merged)
	m.MergeRounds.Add(work.Rounds)
	m.CriticalPath.Add(work.CriticalPath)
}
