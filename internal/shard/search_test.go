package shard_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metrics"
	"ecosched/internal/shard"
	"ecosched/internal/sim"
	"ecosched/internal/slot"
)

// searchScenario builds a populated federated grid plus a job batch: the
// grid is sharded by the canonical partition, published as per-shard views
// and as the merged single list, so Search and the unsharded oracle run over
// the same vacancy.
func searchScenario(t *testing.T, seed uint64, k int) (shard.Partition, []*slot.Index, *slot.List, *job.Batch) {
	t.Helper()
	rng := sim.NewRNG(seed)
	pool := testPool(t, "n%d", 10)
	p := shard.New(k)
	grid, err := gridsim.New(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.SetSharding(p.K(), p.Of); err != nil {
		t.Fatal(err)
	}
	if err := grid.Populate(gridsim.LocalLoad{MeanGap: 80, DurMin: 30, DurMax: 100}, 0, 900, rng.Split()); err != nil {
		t.Fatal(err)
	}
	views, err := grid.ShardViews(1000)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := grid.VacantSlots(1000)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*job.Job, 0, 5)
	for i := 0; i < 5; i++ {
		jobs = append(jobs, &job.Job{
			Name:     fmt.Sprintf("job%d", i+1),
			Priority: i + 1,
			Request: job.ResourceRequest{
				Nodes:          rng.IntBetween(1, 3),
				Time:           sim.Duration(rng.IntBetween(40, 120)),
				MinPerformance: 1,
				MaxPrice:       sim.Money(rng.IntBetween(6, 14)),
			},
		})
	}
	batch, err := job.NewBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return p, views, merged, batch
}

// renderSearch canonicalizes a search result for byte comparison.
func renderSearch(res *alloc.SearchResult) string {
	var b strings.Builder
	names := make([]string, 0, len(res.Alternatives))
	for name := range res.Alternatives {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, w := range res.Alternatives[name] {
			fmt.Fprintf(&b, "%s: %v\n", name, w)
		}
	}
	fmt.Fprintf(&b, "stats=%+v passes=%d\n", res.Stats, res.Passes)
	fmt.Fprintf(&b, "remaining=%v\n", res.Remaining)
	return b.String()
}

// TestSearchMatchesUnsharded pins the package's headline contract end to
// end: shard.Search over grid-published per-shard views returns exactly what
// alloc.FindAlternatives returns over the merged publication — windows,
// stats, pass count, and remaining vacancy — for both algorithms and several
// shard counts.
func TestSearchMatchesUnsharded(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		for _, algo := range []alloc.Algorithm{alloc.ALP{}, alloc.AMP{}} {
			for _, k := range []int{1, 2, 4, 7} {
				p, views, merged, batch := searchScenario(t, seed, k)
				oracle, err := alloc.FindAlternatives(algo, merged, batch, alloc.SearchOptions{})
				if err != nil {
					t.Fatalf("seed %d %s k=%d: oracle: %v", seed, algo.Name(), k, err)
				}
				res, err := shard.Search(algo, p, views, batch, alloc.SearchOptions{}, 2, nil)
				if err != nil {
					t.Fatalf("seed %d %s k=%d: Search: %v", seed, algo.Name(), k, err)
				}
				if got, want := renderSearch(res), renderSearch(oracle); got != want {
					t.Fatalf("seed %d %s k=%d: federated search diverged\n--- unsharded ---\n%s\n--- sharded ---\n%s",
						seed, algo.Name(), k, want, got)
				}
			}
		}
	}
}

// TestSearchMetrics smoke-tests the shard metric family through the real
// entry points: Published sets the per-shard slot gauges and the imbalance,
// Search feeds the scan/merge counters, and all methods tolerate nil.
func TestSearchMetrics(t *testing.T) {
	reg := metrics.New()
	k := 3
	p, views, _, batch := searchScenario(t, 3, k)
	m := shard.NewMetrics(reg, k)
	m.Published(views)
	if _, err := shard.Search(alloc.AMP{}, p, views, batch, alloc.SearchOptions{}, 1, m); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n := snap.Gauge("shard/count"); n != int64(k) {
		t.Errorf("shard/count = %d, want %d", n, k)
	}
	slots := int64(0)
	for i := 0; i < k; i++ {
		slots += snap.Gauge(fmt.Sprintf("shard/%d/slots", i))
	}
	if slots == 0 {
		t.Error("per-shard slot gauges all zero after Published")
	}
	if n := snap.Gauge("shard/imbalance_x1000"); n < 1000 {
		t.Errorf("shard/imbalance_x1000 = %d, want >= 1000 (max/mean is at least 1)", n)
	}
	if n := snap.Counter("shard/merge/candidates_total"); n == 0 {
		t.Error("no merge candidates counted")
	}
	if n := snap.Counter("shard/merge/rounds_total"); n == 0 {
		t.Error("no merge rounds counted")
	}
	if n := snap.Counter("shard/scan_critical_path_total"); n == 0 {
		t.Error("no critical path counted")
	}
	var nilM *shard.Metrics
	nilM.Published(views)
	nilM.ObserveSearch(nil)
	if shard.NewMetrics(nil, 2) != nil {
		t.Error("NewMetrics(nil) must return nil")
	}
}
