package shard_test

import (
	"fmt"
	"sort"
	"testing"

	"ecosched/internal/resource"
	"ecosched/internal/shard"
	"ecosched/internal/sim"
)

// testPool builds a pool of n nodes named by the given format.
func testPool(t testing.TB, format string, n int) *resource.Pool {
	t.Helper()
	nodes := make([]*resource.Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, &resource.Node{
			Name:        fmt.Sprintf(format, i+1),
			Performance: 1 + float64(i%3),
			Price:       sim.Money(2 + i%4),
		})
	}
	return resource.MustNewPool(nodes)
}

// fnvShard is the test's independent model of the assignment: FNV-64a over
// the label, mod k — re-implemented here so a regression in the production
// hash cannot hide behind itself.
func fnvShard(label string, k int) int {
	var h uint64 = 14695981039346656037
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(k))
}

// TestPartitionMatchesModel checks Of against the independent hash model for
// every node and shard count, and pins non-degeneracy of the node-naming
// schemes the suites shard: the differential sessions' n1..n12 must occupy
// every shard at K ∈ {2, 4, 7}.
func TestPartitionMatchesModel(t *testing.T) {
	pool := testPool(t, "n%d", 12)
	for _, k := range []int{2, 3, 4, 7} {
		p := shard.New(k)
		used := make(map[int]bool)
		for _, n := range pool.Nodes() {
			got := p.Of(n)
			if want := fnvShard(n.Label(), k); got != want {
				t.Fatalf("k=%d node %s: Of=%d, model=%d", k, n.Label(), got, want)
			}
			if got < 0 || got >= k {
				t.Fatalf("k=%d node %s: shard %d out of range", k, n.Label(), got)
			}
			used[got] = true
		}
		if len(used) != k {
			t.Errorf("k=%d: n1..n12 occupy only %d shards — degenerate split", k, len(used))
		}
	}
}

// TestPartitionStability pins the assignment as a pure function of the node
// label: identical across separately constructed partitions and pools,
// independent of node order, and unchanged for surviving nodes when others
// join or leave.
func TestPartitionStability(t *testing.T) {
	p, q := shard.New(4), shard.New(4)
	pool := testPool(t, "cpu%d", 9)
	reversed := make([]*resource.Node, 0, 9)
	for i := 8; i >= 0; i-- {
		n := pool.Nodes()[i]
		reversed = append(reversed, &resource.Node{Name: n.Name, Performance: n.Performance, Price: n.Price})
	}
	revPool := resource.MustNewPool(reversed)
	for _, n := range pool.Nodes() {
		if p.Of(n) != q.Of(n) {
			t.Fatalf("node %s: two equal partitions disagree", n.Label())
		}
		if p.Of(n) != p.Of(revPool.ByName(n.Label())) {
			t.Fatalf("node %s: assignment depends on pool order", n.Label())
		}
	}
	smaller := testPool(t, "cpu%d", 5)
	for _, n := range smaller.Nodes() {
		if p.Of(n) != p.Of(pool.ByName(n.Label())) {
			t.Fatalf("node %s: assignment changed when other nodes were removed", n.Label())
		}
	}
}

// TestNewClamps pins the degenerate cases: K < 1 clamps to the unsharded
// partition, whose assignment is constant zero.
func TestNewClamps(t *testing.T) {
	for _, k := range []int{-3, 0, 1} {
		p := shard.New(k)
		if p.K() != 1 {
			t.Errorf("New(%d).K() = %d, want 1", k, p.K())
		}
		if got := p.Of(&resource.Node{Name: "anything"}); got != 0 {
			t.Errorf("New(%d).Of = %d, want 0", k, got)
		}
	}
}

// TestSplit checks the grouping: every node lands in exactly the group Of
// names, pool order is preserved within groups, and shards with no nodes
// stay as empty groups rather than being dropped.
func TestSplit(t *testing.T) {
	pool := testPool(t, "cpu%d", 12)
	p := shard.New(7)
	groups := p.Split(pool)
	if len(groups) != 7 {
		t.Fatalf("Split returned %d groups, want 7", len(groups))
	}
	total, empty := 0, 0
	for i, g := range groups {
		total += len(g)
		if len(g) == 0 {
			empty++
		}
		ids := make([]int, 0, len(g))
		for _, n := range g {
			if p.Of(n) != i {
				t.Fatalf("node %s in group %d but Of says %d", n.Label(), i, p.Of(n))
			}
			ids = append(ids, int(n.ID))
		}
		if !sort.IntsAreSorted(ids) {
			t.Fatalf("group %d not in pool order: %v", i, ids)
		}
	}
	if total != 12 {
		t.Fatalf("groups hold %d nodes, want 12", total)
	}
	if empty == 0 {
		t.Log("cpu1..cpu12 fill all 7 shards; empty-shard handling exercised elsewhere")
	}
}
