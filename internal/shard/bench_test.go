package shard_test

import (
	"fmt"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/job"
	"ecosched/internal/resource"
	"ecosched/internal/shard"
	"ecosched/internal/sim"
	"ecosched/internal/slot"
)

// benchGrid generates the scaling-study vacancy: nodes × perNode vacant
// slots laid out as near-contiguous per-node runs, so deadline-bounded scans
// cover a time prefix spanning every node. Performance spreads over
// [1, 10.9] so a demanding MinPerformance filter passes only a few percent
// of candidates — the deep-scan regime the study measures.
func benchGrid(nodes, perNode int) (*resource.Pool, []slot.Slot) {
	specs := make([]*resource.Node, 0, nodes)
	for i := 0; i < nodes; i++ {
		specs = append(specs, &resource.Node{
			Name:        fmt.Sprintf("b%d", i+1),
			Performance: 1 + float64(i%100)/10,
			Price:       sim.Money(1 + i%5),
		})
	}
	pool := resource.MustNewPool(specs)
	slots := make([]slot.Slot, 0, nodes*perNode)
	for i, n := range pool.Nodes() {
		for j := 0; j < perNode; j++ {
			start := sim.Time(j*110 + (i*13)%37)
			slots = append(slots, slot.New(n, start, start+100))
		}
	}
	return pool, slots
}

// benchBatch builds the study's job population: nine of every ten jobs are
// deadline-bounded probes whose MinPerformance passes ~4% of the grid, so
// each one scans the full deadline prefix; every tenth job is an easily
// placed two-node request that commits real subtractions into the views.
func benchBatch(b *testing.B, jobs int, deadline sim.Time) *job.Batch {
	out := make([]*job.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j := &job.Job{Name: fmt.Sprintf("j%d", i+1), Priority: i + 1}
		if i%10 == 0 {
			j.Request = job.ResourceRequest{Nodes: 2, Time: 50, MinPerformance: 1, MaxPrice: 1000}
		} else {
			j.Request = job.ResourceRequest{Nodes: 8, Time: 100, MinPerformance: 10.5, MaxPrice: 1000, Deadline: deadline}
		}
		out = append(out, j)
	}
	batch, err := job.NewBatch(out)
	if err != nil {
		b.Fatal(err)
	}
	return batch
}

// shardViews splits the generated vacancy by the canonical partition into
// per-shard indexes, fresh for every measurement (the search subtracts from
// them in place).
func shardViews(p shard.Partition, pool *resource.Pool, slots []slot.Slot) []*slot.Index {
	parts := make([][]slot.Slot, p.K())
	for _, s := range slots {
		i := p.Of(s.Node)
		parts[i] = append(parts[i], s)
	}
	views := make([]*slot.Index, p.K())
	for i := range views {
		part := make([]slot.Slot, len(parts[i]))
		copy(part, parts[i])
		views[i] = slot.NewIndex(slot.NewList(part), nil)
	}
	return views
}

// BenchmarkShardedSession is the committed scaling study (BENCH_shard.json):
// one full single-pass alternative search per iteration — the scan phase of
// a metascheduler session — across shards × slots × batch size, with the
// largest configuration at 1M vacant slots and a 100k-job batch. Every
// shard count including K=1 runs through FindAlternativesSharded, so the
// work accounting is apples-to-apples.
//
// This container has a single CPU, so wall-clock ns/op cannot show parallel
// speedup; the study's headline metric is critpath-ranks/op — the
// deterministic scan-phase critical path (per producer round, the maximum
// ranks walked by any one shard), which is what K cores would pay. The
// acceptance bar is critpath(K=1) / critpath(K=4) >= 2. scan-ranks/op is
// the total production work and stays ~flat across K (sharding divides the
// scan, it does not add work), and merged/op counts candidates surviving
// the per-shard filters into the cross-shard combination.
func BenchmarkShardedSession(b *testing.B) {
	shapes := []struct {
		nodes, perNode, jobs int
		// deadline bounds every probe's scan: ranks-per-scan ≈ nodes ×
		// deadline / 110. The 100k-job batch halves the per-scan depth so
		// the study's total rank budget stays comparable across shapes.
		deadline sim.Time
	}{
		{500, 500, 10_000, 440},
		{1000, 1000, 10_000, 440},
		{1000, 1000, 100_000, 220},
	}
	for _, shape := range shapes {
		pool, slots := benchGrid(shape.nodes, shape.perNode)
		batch := benchBatch(b, shape.jobs, shape.deadline)
		for _, k := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("slots=%d/jobs=%d/shards=%d", shape.nodes*shape.perNode, shape.jobs, k)
			b.Run(name, func(b *testing.B) {
				p := shard.New(k)
				var critpath, scanned, merged int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					views := shardViews(p, pool, slots)
					work := &alloc.ShardWork{}
					b.StartTimer()
					res, err := alloc.FindAlternativesSharded(alloc.ALP{}, views, p.Of, batch,
						alloc.SearchOptions{FirstOnly: true}, k, work)
					if err != nil {
						b.Fatal(err)
					}
					if res.TotalAlternatives() == 0 {
						b.Fatal("no windows found — the study needs placeable jobs")
					}
					critpath += work.CriticalPath
					for _, n := range work.ScanSlots {
						scanned += n
					}
					merged += work.Merged
				}
				b.ReportMetric(float64(critpath)/float64(b.N), "critpath-ranks/op")
				b.ReportMetric(float64(scanned)/float64(b.N), "scan-ranks/op")
				b.ReportMetric(float64(merged)/float64(b.N), "merged/op")
			})
		}
	}
}
