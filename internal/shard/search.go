package shard

import (
	"ecosched/internal/alloc"
	"ecosched/internal/job"
	"ecosched/internal/slot"
)

// Search runs the federated alternative search over per-shard vacant views:
// alloc.FindAlternativesSharded with this partition's node assignment, plus
// metrics observation of the scan-phase work. views[i] must hold exactly the
// vacant slots of the nodes Of assigns to shard i (gridsim.ShardViews
// publishes such views), and ownership transfers — the search subtracts found
// windows from the views in place. Results are byte-identical to the
// unsharded search over the merged list.
func Search(algo alloc.Algorithm, p Partition, views []*slot.Index, batch *job.Batch,
	opts alloc.SearchOptions, parallelism int, m *Metrics) (*alloc.SearchResult, error) {
	var work *alloc.ShardWork
	if m != nil {
		work = &alloc.ShardWork{ScanSlots: make([]int64, len(views))}
	}
	res, err := alloc.FindAlternativesSharded(algo, views, p.Of, batch, opts, parallelism, work)
	if err != nil {
		return nil, err
	}
	m.ObserveSearch(work)
	return res, nil
}
