package shard_test

import (
	"testing"

	"ecosched/internal/gridsim"
	"ecosched/internal/resource"
	"ecosched/internal/shard"
	"ecosched/internal/sim"
	"ecosched/internal/slot"
)

// FuzzShardPartition fuzzes the partitioner against its naive model and the
// grid's federated publication: for an arbitrary node population and shard
// count,
//
//   - every node lands in exactly one shard, matching the independent hash
//     model;
//   - the assignment is stable under permutation of the node set and under
//     removing a node (simulating node churn — survivors never migrate);
//   - each shard's published vacant view holds only its own nodes' slots,
//     and the canonical merge of all views is byte-identical to the global
//     publication and to the rebuild oracle.
func FuzzShardPartition(f *testing.F) {
	f.Add(uint64(1), 6, 2)
	f.Add(uint64(7), 12, 7)
	f.Add(uint64(42), 3, 5)
	f.Add(uint64(9), 8, 1)
	f.Fuzz(func(t *testing.T, seed uint64, nodeCount, k int) {
		if nodeCount < 1 {
			nodeCount = 1
		}
		if nodeCount > 24 {
			nodeCount = nodeCount%24 + 1
		}
		if k < 1 {
			k = 1
		}
		if k > 9 {
			k = k%9 + 1
		}
		rng := sim.NewRNG(seed)
		nodes := make([]*resource.Node, 0, nodeCount)
		for i := 0; i < nodeCount; i++ {
			nodes = append(nodes, &resource.Node{
				Name:        "m" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Performance: rng.FloatBetween(1, 3),
				Price:       sim.Money(rng.IntBetween(1, 5)),
			})
		}
		pool := resource.MustNewPool(nodes)
		p := shard.New(k)

		// Exactly-one membership, against the independent model.
		groups := p.Split(pool)
		seen := make(map[string]int)
		for i, g := range groups {
			for _, n := range g {
				if prev, dup := seen[n.Label()]; dup {
					t.Fatalf("node %s in shards %d and %d", n.Label(), prev, i)
				}
				seen[n.Label()] = i
				if want := fnvShard(n.Label(), p.K()); i != want {
					t.Fatalf("node %s in shard %d, model says %d", n.Label(), i, want)
				}
			}
		}
		if len(seen) != pool.Size() {
			t.Fatalf("%d of %d nodes assigned", len(seen), pool.Size())
		}

		// Permutation and removal stability: rebuild the pool reversed and
		// with the first node removed; every surviving label keeps its shard.
		reversed := make([]*resource.Node, 0, len(nodes))
		for i := len(nodes) - 1; i > 0; i-- {
			n := nodes[i]
			reversed = append(reversed, &resource.Node{Name: n.Name, Performance: n.Performance, Price: n.Price})
		}
		if len(reversed) > 0 {
			for _, n := range resource.MustNewPool(reversed).Nodes() {
				if got := p.Of(n); got != seen[n.Label()] {
					t.Fatalf("node %s migrated from shard %d to %d under permutation/removal", n.Label(), seen[n.Label()], got)
				}
			}
		}

		// Federated publication: union of shard views == global view.
		grid, err := gridsim.New(pool)
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.SetSharding(p.K(), p.Of); err != nil {
			t.Fatal(err)
		}
		if err := grid.Populate(gridsim.LocalLoad{MeanGap: 60, DurMin: 20, DurMax: 80}, 0, 400, rng.Split()); err != nil {
			t.Fatal(err)
		}
		horizon := sim.Time(500)
		views, err := grid.ShardViews(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if len(views) != p.K() {
			t.Fatalf("%d views for %d shards", len(views), p.K())
		}
		lists := make([]*slot.List, len(views))
		for i, v := range views {
			for _, s := range v.List().Slots() {
				if got := p.Of(s.Node); got != i {
					t.Fatalf("view %d holds slot of node %s (shard %d)", i, s.Node.Label(), got)
				}
			}
			lists[i] = v.List()
		}
		merged := slot.MergeLists(lists...)
		global, err := grid.VacantSlots(horizon)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := grid.RebuildVacantSlots(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if merged.String() != global.String() {
			t.Fatalf("merged shard views != global publication\n--- merged ---\n%v\n--- global ---\n%v", merged, global)
		}
		if merged.String() != oracle.String() {
			t.Fatalf("merged shard views != rebuild oracle\n--- merged ---\n%v\n--- oracle ---\n%v", merged, oracle)
		}
	})
}
