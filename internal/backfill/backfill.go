// Package backfill implements the baseline the paper positions ALP/AMP
// against (Section 3, refs [11, 12]): backfilling over dedicated,
// homogeneous resources. Backfilling finds rectangular windows of N
// concurrent slots for jobs whose tasks have identical requirements; it has
// no notion of prices or per-node performance, and its earliest-window scan
// over per-node busy timelines is quadratic in the number of occupied
// intervals, versus the linear single scan of ALP/AMP.
//
// Two classical variants are provided on top of the same timeline substrate:
//
//   - Conservative backfilling: every queued job gets a reservation at its
//     earliest feasible start; later jobs may only fill holes that do not
//     disturb any earlier reservation.
//   - EASY (aggressive) backfilling: only the head-of-queue job holds a
//     reservation; any other job may be started out of order if it does not
//     delay that single reservation.
package backfill

import (
	"fmt"
	"sort"

	"ecosched/internal/sim"
)

// Reservation is a scheduled run: count nodes for the interval, on the
// node indices listed in Nodes.
type Reservation struct {
	JobName string
	Nodes   []int
	Span    sim.Interval
}

// Cluster is a homogeneous machine with per-node busy timelines. All nodes
// are interchangeable; a job asks for a node count and a duration.
type Cluster struct {
	n    int
	busy [][]sim.Interval // per node, sorted, non-overlapping
}

// NewCluster builds a cluster of n identical nodes, all idle.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("backfill: cluster needs at least one node, got %d", n)
	}
	return &Cluster{n: n, busy: make([][]sim.Interval, n)}, nil
}

// Size returns the node count.
func (c *Cluster) Size() int { return c.n }

// BusyIntervals returns the number of busy intervals across all nodes — the
// m that the backfill scan is quadratic in.
func (c *Cluster) BusyIntervals() int {
	var total int
	for _, iv := range c.busy {
		total += len(iv)
	}
	return total
}

// Occupy marks [start, start+d) busy on the given node. Intervals may touch
// but must not overlap existing ones.
func (c *Cluster) Occupy(node int, start sim.Time, d sim.Duration) error {
	if node < 0 || node >= c.n {
		return fmt.Errorf("backfill: node %d out of range [0, %d)", node, c.n)
	}
	if d <= 0 {
		return fmt.Errorf("backfill: non-positive duration %v", d)
	}
	iv := sim.Interval{Start: start, End: start.Add(d)}
	list := c.busy[node]
	i := sort.Search(len(list), func(i int) bool { return list[i].Start >= iv.Start })
	if i > 0 && list[i-1].End > iv.Start {
		return fmt.Errorf("backfill: node %d interval %v overlaps %v", node, iv, list[i-1])
	}
	if i < len(list) && list[i].Start < iv.End {
		return fmt.Errorf("backfill: node %d interval %v overlaps %v", node, iv, list[i])
	}
	list = append(list, sim.Interval{})
	copy(list[i+1:], list[i:])
	list[i] = iv
	c.busy[node] = list
	return nil
}

// freeAt reports whether node is idle during [start, start+d).
func (c *Cluster) freeAt(node int, start sim.Time, d sim.Duration) bool {
	iv := sim.Interval{Start: start, End: start.Add(d)}
	list := c.busy[node]
	i := sort.Search(len(list), func(i int) bool { return list[i].End > iv.Start })
	return i >= len(list) || !list[i].Overlaps(iv)
}

// EarliestWindow returns the earliest start time at which count nodes are
// simultaneously idle for duration d, and the node indices. The scan visits
// every busy-interval end point as a candidate start and, for each, checks
// node availability against the busy lists — the O(m²)-flavored probing the
// paper attributes to backfilling.
func (c *Cluster) EarliestWindow(count int, d sim.Duration) (sim.Time, []int, error) {
	if count <= 0 || count > c.n {
		return 0, nil, fmt.Errorf("backfill: window of %d nodes on %d-node cluster", count, c.n)
	}
	if d <= 0 {
		return 0, nil, fmt.Errorf("backfill: non-positive duration %v", d)
	}
	// Candidate starts: time zero and every busy-interval end.
	candidates := []sim.Time{0}
	for _, list := range c.busy {
		for _, iv := range list {
			candidates = append(candidates, iv.End)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, t := range candidates {
		var nodes []int
		for node := 0; node < c.n && len(nodes) < count; node++ {
			if c.freeAt(node, t, d) {
				nodes = append(nodes, node)
			}
		}
		if len(nodes) == count {
			return t, nodes, nil
		}
	}
	// Unreachable: after the last busy end every node is idle forever.
	return 0, nil, fmt.Errorf("backfill: no window found (unbounded horizon exhausted)")
}

// Reserve books count nodes for duration d at the earliest feasible start
// and returns the reservation.
func (c *Cluster) Reserve(jobName string, count int, d sim.Duration) (Reservation, error) {
	start, nodes, err := c.EarliestWindow(count, d)
	if err != nil {
		return Reservation{}, err
	}
	for _, node := range nodes {
		if err := c.Occupy(node, start, d); err != nil {
			return Reservation{}, fmt.Errorf("backfill: reserving %s: %w", jobName, err)
		}
	}
	return Reservation{JobName: jobName, Nodes: nodes, Span: sim.Interval{Start: start, End: start.Add(d)}}, nil
}

// StartableAt reports whether count nodes are idle for d starting exactly
// at t, returning the nodes when so.
func (c *Cluster) StartableAt(t sim.Time, count int, d sim.Duration) ([]int, bool) {
	var nodes []int
	for node := 0; node < c.n && len(nodes) < count; node++ {
		if c.freeAt(node, t, d) {
			nodes = append(nodes, node)
		}
	}
	if len(nodes) == count {
		return nodes, true
	}
	return nil, false
}
