package backfill

import (
	"testing"
	"testing/quick"

	"ecosched/internal/sim"
)

func TestNewCluster(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero-node cluster accepted")
	}
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 || c.BusyIntervals() != 0 {
		t.Error("fresh cluster state wrong")
	}
}

func TestOccupyAndOverlapDetection(t *testing.T) {
	c, _ := NewCluster(2)
	if err := c.Occupy(0, 10, 20); err != nil {
		t.Fatalf("Occupy: %v", err)
	}
	if err := c.Occupy(0, 30, 10); err != nil {
		t.Fatalf("touching Occupy: %v", err)
	}
	if err := c.Occupy(0, 25, 10); err == nil {
		t.Error("overlap accepted")
	}
	if err := c.Occupy(0, 5, 10); err == nil {
		t.Error("overlap from the left accepted")
	}
	if err := c.Occupy(5, 0, 10); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.Occupy(0, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if c.BusyIntervals() != 2 {
		t.Errorf("BusyIntervals: got %d", c.BusyIntervals())
	}
}

func TestEarliestWindowIdleCluster(t *testing.T) {
	c, _ := NewCluster(3)
	start, nodes, err := c.EarliestWindow(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || len(nodes) != 2 {
		t.Errorf("idle cluster window: start=%v nodes=%v", start, nodes)
	}
}

func TestEarliestWindowSkipsBusy(t *testing.T) {
	c, _ := NewCluster(2)
	// Both nodes busy [0, 100); node 1 also busy [100, 150).
	if err := c.Occupy(0, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(1, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(1, 100, 50); err != nil {
		t.Fatal(err)
	}
	start, nodes, err := c.EarliestWindow(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start != 150 {
		t.Errorf("window start: got %v, want 150", start)
	}
	if len(nodes) != 2 {
		t.Errorf("nodes: %v", nodes)
	}
	// A single node is free at 100 already.
	start1, _, err := c.EarliestWindow(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start1 != 100 {
		t.Errorf("single-node window: got %v, want 100", start1)
	}
}

func TestEarliestWindowHole(t *testing.T) {
	c, _ := NewCluster(1)
	if err := c.Occupy(0, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(0, 100, 50); err != nil {
		t.Fatal(err)
	}
	// A 40-tick job fits the [50, 100) hole.
	start, _, err := c.EarliestWindow(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if start != 50 {
		t.Errorf("hole fit: got %v, want 50", start)
	}
	// A 60-tick job does not; it must go after 150.
	start, _, err = c.EarliestWindow(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if start != 150 {
		t.Errorf("hole skip: got %v, want 150", start)
	}
}

func TestEarliestWindowInvalidArgs(t *testing.T) {
	c, _ := NewCluster(2)
	if _, _, err := c.EarliestWindow(0, 10); err == nil {
		t.Error("zero count accepted")
	}
	if _, _, err := c.EarliestWindow(3, 10); err == nil {
		t.Error("count beyond cluster accepted")
	}
	if _, _, err := c.EarliestWindow(1, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestReserve(t *testing.T) {
	c, _ := NewCluster(2)
	r1, err := c.Reserve("a", 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Span.Start != 0 {
		t.Errorf("first reservation start: %v", r1.Span.Start)
	}
	r2, err := c.Reserve("b", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Span.Start != 100 {
		t.Errorf("second reservation should queue behind: %v", r2.Span.Start)
	}
}

func TestStartableAt(t *testing.T) {
	c, _ := NewCluster(2)
	if err := c.Occupy(0, 0, 100); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.StartableAt(0, 2, 10); ok {
		t.Error("both nodes reported idle while one is busy")
	}
	nodes, ok := c.StartableAt(0, 1, 10)
	if !ok || len(nodes) != 1 || nodes[0] != 1 {
		t.Errorf("StartableAt: %v %v", nodes, ok)
	}
}

// TestEarliestWindowIsEarliest property: no feasible start exists strictly
// before the one EarliestWindow reports (checked on a tick grid).
func TestEarliestWindowIsEarliest(t *testing.T) {
	f := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		c, _ := NewCluster(3)
		for i := 0; i < 10; i++ {
			node := rng.IntN(3)
			start := sim.Time(rng.IntN(300))
			d := sim.Duration(rng.IntBetween(10, 80))
			_ = c.Occupy(node, start, d) // collisions are fine to skip
		}
		count := rng.IntBetween(1, 3)
		dur := sim.Duration(rng.IntBetween(10, 120))
		start, nodes, err := c.EarliestWindow(count, dur)
		if err != nil || len(nodes) != count {
			return false
		}
		if _, ok := c.StartableAt(start, count, dur); !ok {
			return false
		}
		for tick := sim.Time(0); tick < start; tick++ {
			if _, ok := c.StartableAt(tick, count, dur); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
