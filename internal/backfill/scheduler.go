package backfill

import (
	"fmt"
	"sort"

	"ecosched/internal/sim"
)

// QueuedJob is a rigid parallel job for the backfilling baseline: count
// identical nodes for a fixed duration, released into the queue at Arrival.
type QueuedJob struct {
	Name     string
	Nodes    int
	Duration sim.Duration
	Arrival  sim.Time
}

// Validate checks the job.
func (q QueuedJob) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("backfill: job with empty name")
	}
	if q.Nodes <= 0 {
		return fmt.Errorf("backfill: job %s requests %d nodes", q.Name, q.Nodes)
	}
	if q.Duration <= 0 {
		return fmt.Errorf("backfill: job %s has duration %v", q.Name, q.Duration)
	}
	if q.Arrival < 0 {
		return fmt.Errorf("backfill: job %s arrives at %v", q.Name, q.Arrival)
	}
	return nil
}

// Variant selects the backfilling flavor.
type Variant int

const (
	// Conservative gives every queued job a reservation; backfilled jobs
	// may not delay any of them.
	Conservative Variant = iota
	// EASY reserves only for the head of the queue; backfilled jobs may
	// not delay that single reservation.
	EASY
)

// String names the variant.
func (v Variant) String() string {
	if v == EASY {
		return "EASY"
	}
	return "conservative"
}

// Schedule is the result of running the baseline scheduler over a queue.
type Schedule struct {
	Variant      Variant
	Reservations []Reservation
	// Makespan is the latest completion time.
	Makespan sim.Time
	// TotalWait is the summed (start − arrival) over jobs.
	TotalWait sim.Duration
}

// MeanWait returns the mean job wait time.
func (s *Schedule) MeanWait() float64 {
	if len(s.Reservations) == 0 {
		return 0
	}
	return float64(s.TotalWait) / float64(len(s.Reservations))
}

// Utilization returns busy node-ticks divided by cluster capacity up to the
// makespan.
func (s *Schedule) Utilization(clusterSize int) float64 {
	if s.Makespan <= 0 || clusterSize <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, r := range s.Reservations {
		busy += r.Span.Length() * sim.Duration(len(r.Nodes))
	}
	return float64(busy) / (float64(s.Makespan) * float64(clusterSize))
}

// Run schedules the queue (in arrival order; FCFS base order) on a fresh
// cluster of the given size with the selected backfilling variant and
// returns the schedule.
//
// Both variants share the mechanics: jobs are taken FCFS; the head job is
// placed at its earliest window; the remaining jobs are examined in order
// and started early ("backfilled") when a window exists that does not
// disturb the protected reservations (all earlier queued jobs for
// Conservative, only the head job for EASY).
func Run(variant Variant, clusterSize int, queue []QueuedJob) (*Schedule, error) {
	cluster, err := NewCluster(clusterSize)
	if err != nil {
		return nil, err
	}
	jobs := make([]QueuedJob, len(queue))
	copy(jobs, queue)
	for _, q := range jobs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.Nodes > clusterSize {
			return nil, fmt.Errorf("backfill: job %s needs %d nodes, cluster has %d", q.Name, q.Nodes, clusterSize)
		}
	}
	// Stable FCFS order by arrival.
	sortStableByArrival(jobs)

	sched := &Schedule{Variant: variant}
	switch variant {
	case Conservative:
		// Every job is reserved at its earliest window in queue order;
		// because each reservation is committed to the timelines before
		// the next job is examined, later jobs can only slide into holes
		// that leave earlier reservations untouched — which is exactly
		// the conservative guarantee.
		for _, q := range jobs {
			r, err := reserveAfter(cluster, q)
			if err != nil {
				return nil, err
			}
			record(sched, q, r)
		}
	case EASY:
		pending := jobs
		for len(pending) > 0 {
			head := pending[0]
			// Head gets the binding reservation.
			r, err := reserveAfter(cluster, head)
			if err != nil {
				return nil, err
			}
			record(sched, head, r)
			shadow := r.Span.Start
			pending = pending[1:]
			// Backfill pass: start any later job whose run fits
			// strictly before the head's reserved start or does not
			// overlap the head's nodes... with homogeneous nodes it
			// suffices that a window exists starting no later than
			// the shadow time leaving the head's start intact; the
			// head's reservation is already committed, so any window
			// EarliestWindow finds cannot disturb it.
			remaining := pending[:0]
			for _, q := range pending {
				start, nodes, err := cluster.EarliestWindow(q.Nodes, q.Duration)
				if err != nil {
					return nil, err
				}
				if start.Max(q.Arrival) <= shadow && start >= q.Arrival {
					for _, node := range nodes {
						if err := cluster.Occupy(node, start, q.Duration); err != nil {
							return nil, err
						}
					}
					record(sched, q, Reservation{JobName: q.Name, Nodes: nodes,
						Span: sim.Interval{Start: start, End: start.Add(q.Duration)}})
					continue
				}
				remaining = append(remaining, q)
			}
			pending = remaining
		}
	default:
		return nil, fmt.Errorf("backfill: unknown variant %d", variant)
	}
	return sched, nil
}

// reserveAfter reserves q's window no earlier than its arrival.
func reserveAfter(c *Cluster, q QueuedJob) (Reservation, error) {
	// Find the earliest window; if it precedes the arrival, probe again
	// from the arrival time by temporarily treating [0, arrival) as busy
	// via candidate filtering.
	start, nodes, err := c.EarliestWindow(q.Nodes, q.Duration)
	if err != nil {
		return Reservation{}, err
	}
	if start < q.Arrival {
		// Re-probe at the arrival instant and at every busy end after
		// it; StartableAt at q.Arrival covers the common case, then
		// fall back to scanning ends.
		if ns, ok := c.StartableAt(q.Arrival, q.Nodes, q.Duration); ok {
			start, nodes = q.Arrival, ns
		} else {
			start, nodes, err = c.earliestWindowFrom(q.Arrival, q.Nodes, q.Duration)
			if err != nil {
				return Reservation{}, err
			}
		}
	}
	for _, node := range nodes {
		if err := c.Occupy(node, start, q.Duration); err != nil {
			return Reservation{}, fmt.Errorf("backfill: reserving %s: %w", q.Name, err)
		}
	}
	return Reservation{JobName: q.Name, Nodes: nodes, Span: sim.Interval{Start: start, End: start.Add(q.Duration)}}, nil
}

// earliestWindowFrom is EarliestWindow restricted to starts >= from.
func (c *Cluster) earliestWindowFrom(from sim.Time, count int, d sim.Duration) (sim.Time, []int, error) {
	candidates := []sim.Time{from}
	for _, list := range c.busy {
		for _, iv := range list {
			if iv.End >= from {
				candidates = append(candidates, iv.End)
			}
		}
	}
	sortTimes(candidates)
	for _, t := range candidates {
		if nodes, ok := c.StartableAt(t, count, d); ok {
			return t, nodes, nil
		}
	}
	return 0, nil, fmt.Errorf("backfill: no window found from %v", from)
}

func record(s *Schedule, q QueuedJob, r Reservation) {
	s.Reservations = append(s.Reservations, r)
	if r.Span.End > s.Makespan {
		s.Makespan = r.Span.End
	}
	if r.Span.Start > q.Arrival {
		s.TotalWait += r.Span.Start.Sub(q.Arrival)
	}
}

func sortStableByArrival(jobs []QueuedJob) {
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })
}

func sortTimes(ts []sim.Time) {
	sort.Slice(ts, func(i, k int) bool { return ts[i] < ts[k] })
}
