package backfill

import (
	"testing"
	"testing/quick"

	"ecosched/internal/sim"
)

func TestQueuedJobValidate(t *testing.T) {
	good := QueuedJob{Name: "a", Nodes: 1, Duration: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []QueuedJob{
		{Nodes: 1, Duration: 10},
		{Name: "a", Nodes: 0, Duration: 10},
		{Name: "a", Nodes: 1, Duration: 0},
		{Name: "a", Nodes: 1, Duration: 10, Arrival: -1},
	}
	for i, q := range bad {
		if q.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunRejectsOversizedJob(t *testing.T) {
	if _, err := Run(Conservative, 2, []QueuedJob{{Name: "big", Nodes: 3, Duration: 10}}); err == nil {
		t.Error("job wider than the cluster accepted")
	}
	if _, err := Run(Variant(9), 2, []QueuedJob{{Name: "a", Nodes: 1, Duration: 10}}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestConservativeFCFSOrder(t *testing.T) {
	queue := []QueuedJob{
		{Name: "wide", Nodes: 2, Duration: 100},
		{Name: "narrow", Nodes: 1, Duration: 50},
	}
	s, err := Run(Conservative, 2, queue)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Reservation{}
	for _, r := range s.Reservations {
		byName[r.JobName] = r
	}
	if byName["wide"].Span.Start != 0 {
		t.Errorf("wide should start first: %v", byName["wide"].Span)
	}
	if byName["narrow"].Span.Start != 100 {
		t.Errorf("narrow behind wide: %v", byName["narrow"].Span)
	}
	if s.Makespan != 150 {
		t.Errorf("makespan: got %v", s.Makespan)
	}
}

func TestBackfillFillsHoles(t *testing.T) {
	// Head: 2-wide job. Second: 2-wide long job. Third: 1-wide short job
	// that fits beside nothing under conservative order but starts at 0 on
	// neither variant... here narrow can run in parallel with wide on no
	// free node, so it must not jump ahead; but a 1-wide job while the
	// 2-node cluster runs a 1-wide head leaves one node free.
	queue := []QueuedJob{
		{Name: "head", Nodes: 1, Duration: 100},
		{Name: "second", Nodes: 2, Duration: 50},
		{Name: "filler", Nodes: 1, Duration: 80},
	}
	s, err := Run(Conservative, 2, queue)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Reservation{}
	for _, r := range s.Reservations {
		byName[r.JobName] = r
	}
	if byName["head"].Span.Start != 0 {
		t.Errorf("head start: %v", byName["head"].Span)
	}
	// second needs both nodes → waits for head: starts at 100.
	if byName["second"].Span.Start != 100 {
		t.Errorf("second start: %v", byName["second"].Span)
	}
	// filler (1 node, 80 ticks) fits on the idle node during head's run.
	if byName["filler"].Span.Start != 0 {
		t.Errorf("filler should backfill at 0: %v", byName["filler"].Span)
	}
}

func TestEASYBackfill(t *testing.T) {
	queue := []QueuedJob{
		{Name: "head", Nodes: 2, Duration: 100},
		{Name: "wide", Nodes: 2, Duration: 100},
		{Name: "short", Nodes: 1, Duration: 30},
	}
	s, err := Run(EASY, 2, queue)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Reservation{}
	for _, r := range s.Reservations {
		byName[r.JobName] = r
	}
	if byName["head"].Span.Start != 0 {
		t.Errorf("head start: %v", byName["head"].Span)
	}
	if byName["wide"].Span.Start != 100 {
		t.Errorf("wide start: %v", byName["wide"].Span)
	}
	if byName["short"].Span.Start != 200 {
		// Both nodes are busy with head then wide; the short job
		// cannot backfill ahead of the committed reservations.
		t.Errorf("short start: %v", byName["short"].Span)
	}
	if s.Variant.String() != "EASY" || Conservative.String() != "conservative" {
		t.Error("variant names wrong")
	}
}

func TestArrivalsRespected(t *testing.T) {
	queue := []QueuedJob{
		{Name: "late", Nodes: 1, Duration: 10, Arrival: 500},
		{Name: "early", Nodes: 1, Duration: 10, Arrival: 0},
	}
	for _, v := range []Variant{Conservative, EASY} {
		s, err := Run(v, 2, queue)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for _, r := range s.Reservations {
			if r.JobName == "late" && r.Span.Start < 500 {
				t.Errorf("%v: late job started before its arrival: %v", v, r.Span)
			}
		}
		if s.TotalWait != 0 {
			t.Errorf("%v: no job should wait here, got %v", v, s.TotalWait)
		}
	}
}

func TestScheduleMetrics(t *testing.T) {
	queue := []QueuedJob{
		{Name: "a", Nodes: 2, Duration: 100},
		{Name: "b", Nodes: 2, Duration: 100},
	}
	s, err := Run(Conservative, 2, queue)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanWait() != 50 { // b waits 100, a waits 0
		t.Errorf("MeanWait: got %v", s.MeanWait())
	}
	if u := s.Utilization(2); u != 1.0 {
		t.Errorf("Utilization: got %v, want 1.0", u)
	}
	empty := &Schedule{}
	if empty.MeanWait() != 0 || empty.Utilization(2) != 0 {
		t.Error("empty schedule metrics should be zero")
	}
}

// TestNoOverlapProperty: no two reservations ever share a node-tick, under
// either variant, for random queues.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed uint32, easy bool) bool {
		rng := sim.NewRNG(uint64(seed))
		n := rng.IntBetween(4, 8)
		var queue []QueuedJob
		for i := 0; i < rng.IntBetween(3, 10); i++ {
			queue = append(queue, QueuedJob{
				Name:     "j" + string(rune('a'+i)),
				Nodes:    rng.IntBetween(1, n),
				Duration: sim.Duration(rng.IntBetween(10, 120)),
				Arrival:  sim.Time(rng.IntN(200)),
			})
		}
		v := Conservative
		if easy {
			v = EASY
		}
		s, err := Run(v, n, queue)
		if err != nil {
			return false
		}
		if len(s.Reservations) != len(queue) {
			return false
		}
		type use struct {
			node int
			span sim.Interval
		}
		var uses []use
		for _, r := range s.Reservations {
			for _, node := range r.Nodes {
				uses = append(uses, use{node, r.Span})
			}
		}
		for i := 0; i < len(uses); i++ {
			for k := i + 1; k < len(uses); k++ {
				if uses[i].node == uses[k].node && uses[i].span.Overlaps(uses[k].span) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEASYNeverDelaysHead property: under EASY, each head job's start equals
// the earliest window available at the moment it reached the queue head in a
// run where backfilled jobs were already committed — equivalently, re-running
// with the backfilled jobs removed never lets the head start earlier... a
// cheap proxy: conservative and EASY give the head of the whole queue the
// same start.
func TestEASYHeadStartMatchesConservative(t *testing.T) {
	f := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		n := rng.IntBetween(2, 6)
		var queue []QueuedJob
		for i := 0; i < rng.IntBetween(2, 8); i++ {
			queue = append(queue, QueuedJob{
				Name:     "j" + string(rune('a'+i)),
				Nodes:    rng.IntBetween(1, n),
				Duration: sim.Duration(rng.IntBetween(10, 120)),
			})
		}
		cons, err := Run(Conservative, n, queue)
		if err != nil {
			return false
		}
		easy, err := Run(EASY, n, queue)
		if err != nil {
			return false
		}
		first := queue[0].Name
		var cStart, eStart sim.Time
		for _, r := range cons.Reservations {
			if r.JobName == first {
				cStart = r.Span.Start
			}
		}
		for _, r := range easy.Reservations {
			if r.JobName == first {
				eStart = r.Span.Start
			}
		}
		return cStart == eStart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
