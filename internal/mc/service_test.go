package mc

import (
	"strings"
	"testing"
)

// serviceTiny is the Tiny universe driven through the continuous-service
// event loop.
func serviceTiny() *Universe {
	u := Tiny()
	u.Service = true
	return u
}

// TestExploreServiceTinyClean sweeps the tiny service universe: every
// interleaving of submits, enqueue/evaluate/apply rounds, ticks, failures,
// recoveries, and revocations must satisfy the full audit safety set — the
// eval queue, the epoch-stamped planner, and the re-validating serial
// applier add service state but never an unsafe schedule.
func TestExploreServiceTinyClean(t *testing.T) {
	depth, states := 6, 40000
	if testing.Short() {
		depth, states = 4, 4000
	}
	u := serviceTiny()
	res, err := Explore(u, Options{
		MaxDepth:         depth,
		MaxStates:        states,
		Liveness:         true,
		LivenessEvery:    8,
		DeterminismEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("violation in clean service universe:\n%s", res.Cex.Script(u))
	}
	if res.States < 100 || res.Transitions <= res.States {
		t.Fatalf("implausibly small sweep: %+v", res)
	}
	if res.DeterminismChecks == 0 {
		t.Fatal("determinism sampling never ran")
	}
	t.Logf("service tiny sweep: %d states, %d transitions, deepest %d, truncated %t, liveness %d, determinism %d",
		res.States, res.Transitions, res.Deepest, res.Truncated, res.LivenessChecks, res.DeterminismChecks)
}

// TestExploreTwoShardServiceClean is the federated service sweep: the eval
// actions interleave with fail/recover/revoke across the shard boundary, and
// every reached state must pass the audit set including per-shard store
// coherence. This is the CI 2-shard sweep's service variant.
func TestExploreTwoShardServiceClean(t *testing.T) {
	depth, states := 6, 40000
	if testing.Short() {
		depth, states = 4, 4000
	}
	u := TwoShard()
	u.Service = true
	res, err := Explore(u, Options{
		MaxDepth:         depth,
		MaxStates:        states,
		Liveness:         true,
		LivenessEvery:    8,
		DeterminismEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("violation in 2-shard service universe:\n%s", res.Cex.Script(u))
	}
	if res.States < 100 || res.Transitions <= res.States {
		t.Fatalf("implausibly small sweep: %+v", res)
	}
	t.Logf("2-shard service sweep: %d states, %d transitions, deepest %d, truncated %t",
		res.States, res.Transitions, res.Deepest, res.Truncated)
}

// TestServiceMatchesBatch pins the determinism contract inside the checker:
// replaying a trace against the batch universe and its service twin — with
// plan/commit mapped to evaluate/apply — must reach byte-identical grid and
// scheduler canonical states. The eval queue is extra bookkeeping, never a
// scheduling input.
func TestServiceMatchesBatch(t *testing.T) {
	batch := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActSubmit, Arg: 1}, {Kind: ActSubmit, Arg: 2},
		{Kind: ActPlan}, {Kind: ActCommit},
		{Kind: ActFail, Arg: 1}, {Kind: ActTick},
		{Kind: ActPlan}, {Kind: ActCommit},
		{Kind: ActRevoke, Arg: 0}, {Kind: ActRecover, Arg: 1},
		{Kind: ActPlan}, {Kind: ActCommit},
	}
	service := make([]Action, len(batch))
	for i, a := range batch {
		switch a.Kind {
		case ActPlan:
			a.Kind = ActEvaluate
		case ActCommit:
			a.Kind = ActApply
		}
		service[i] = a
	}
	for _, shards := range []int{0, 2} {
		ub, us := Default(), Default()
		ub.Shards, us.Shards = shards, shards
		us.Service = true
		inB, err := Replay(ub, MutNone, batch, nil)
		if err != nil {
			t.Fatalf("shards=%d batch: %v", shards, err)
		}
		inS, err := Replay(us, MutNone, service, nil)
		if err != nil {
			t.Fatalf("shards=%d service: %v", shards, err)
		}
		var sb, ss strings.Builder
		inB.grid.CanonicalState(&sb)
		inB.sched.CanonicalState(&sb)
		inS.grid.CanonicalState(&ss)
		inS.sched.CanonicalState(&ss)
		if sb.String() != ss.String() {
			t.Fatalf("shards=%d: service replay diverged from batch:\n--- batch ---\n%s\n--- service ---\n%s",
				shards, sb.String(), ss.String())
		}
	}
}

// TestServiceScriptRoundTrip pins Render/ParseScript as inverses over the
// service action kinds.
func TestServiceScriptRoundTrip(t *testing.T) {
	u := serviceTiny()
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActEnqueue}, {Kind: ActEvaluate},
		{Kind: ActFail, Arg: 1}, {Kind: ActApply}, {Kind: ActRecover, Arg: 1},
		{Kind: ActTick}, {Kind: ActEvaluate}, {Kind: ActApply},
	}
	script := RenderTrace(u, trace)
	back, err := ParseScript(u, script)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip changed length: %d -> %d", len(trace), len(back))
	}
	for i := range trace {
		if back[i] != trace[i] {
			t.Fatalf("action %d: %v -> %v", i, trace[i], back[i])
		}
	}
	for _, bad := range []string{"enqueue now", "evaluate j1", "apply n1"} {
		if _, err := ParseScript(u, bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
}

// TestServiceFeasibleMatchesEnabled cross-checks the service frontier
// metadata against the live instance on a walk covering every service
// action: the explorer's metadata-derived action set must agree with
// Instance.Feasible at every step, and batch plan/commit must stay off.
func TestServiceFeasibleMatchesEnabled(t *testing.T) {
	u := serviceTiny()
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActEnqueue}, {Kind: ActEvaluate},
		{Kind: ActFail, Arg: 1}, {Kind: ActApply}, {Kind: ActEnqueue},
		{Kind: ActRecover, Arg: 1}, {Kind: ActEvaluate}, {Kind: ActApply},
		{Kind: ActTick}, {Kind: ActSubmit, Arg: 1},
	}
	in, err := NewInstance(u, MutNone, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := node{}
	all := func() []Action {
		var out []Action
		for j := range u.Jobs {
			out = append(out, Action{Kind: ActSubmit, Arg: j})
		}
		out = append(out,
			Action{Kind: ActPlan}, Action{Kind: ActCommit}, Action{Kind: ActTick},
			Action{Kind: ActEnqueue}, Action{Kind: ActEvaluate}, Action{Kind: ActApply},
			Action{Kind: ActCrash})
		for i := range u.Nodes {
			out = append(out, Action{Kind: ActFail, Arg: i},
				Action{Kind: ActRecover, Arg: i}, Action{Kind: ActRevoke, Arg: i})
		}
		return out
	}
	for step, a := range trace {
		enabled := map[Action]bool{}
		for _, e := range u.enabled(n) {
			enabled[e] = true
		}
		for _, cand := range all() {
			if got := in.Feasible(cand); got != enabled[cand] {
				t.Fatalf("step %d: Feasible(%s) = %t, enabled = %t",
					step, cand.Render(u), got, enabled[cand])
			}
		}
		if err := in.Apply(a); err != nil {
			t.Fatal(err)
		}
		full := make([]Action, step+1)
		copy(full, trace[:step+1])
		n = n.child(a, full)
	}
}

// TestCrashIsIdentity pins the crash action's contract directly: a trace with
// crashes interleaved at every committed boundary reaches exactly the hash of
// the same trace with the crashes removed — durability round-trips through the
// checkpoint codec without observable effect — and crash stays infeasible in
// batch universes and inside an open round.
func TestCrashIsIdentity(t *testing.T) {
	withCrashes := []Action{
		{Kind: ActCrash},
		{Kind: ActSubmit, Arg: 0}, {Kind: ActCrash},
		{Kind: ActSubmit, Arg: 1}, {Kind: ActEnqueue}, {Kind: ActCrash},
		{Kind: ActEvaluate}, {Kind: ActApply}, {Kind: ActCrash},
		{Kind: ActFail, Arg: 1}, {Kind: ActCrash},
		{Kind: ActTick}, {Kind: ActRecover, Arg: 1}, {Kind: ActCrash},
		{Kind: ActEvaluate}, {Kind: ActApply}, {Kind: ActCrash},
	}
	var without []Action
	for _, a := range withCrashes {
		if a.Kind != ActCrash {
			without = append(without, a)
		}
	}
	inC, err := Replay(serviceTiny(), MutNone, withCrashes, nil)
	if err != nil {
		t.Fatal(err)
	}
	inP, err := Replay(serviceTiny(), MutNone, without, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inC.Hash() != inP.Hash() {
		t.Fatalf("crash is not identity: hash %016x with crashes, %016x without",
			inC.Hash(), inP.Hash())
	}

	batch, err := NewInstance(Tiny(), MutNone, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Feasible(Action{Kind: ActCrash}) {
		t.Fatal("crash feasible in a batch universe")
	}
	if err := inC.Apply(Action{Kind: ActEvaluate}); err != nil {
		t.Fatal(err)
	}
	if inC.Feasible(Action{Kind: ActCrash}) {
		t.Fatal("crash feasible inside an open round")
	}
}

// TestServiceDrain pins the liveness machinery in service mode: a trace that
// leaves an open round, a failed node, and backoff-gated requeues must still
// drain to an empty queue through fault-free tick rounds.
func TestServiceDrain(t *testing.T) {
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActSubmit, Arg: 1},
		{Kind: ActEvaluate}, {Kind: ActFail, Arg: 0}, {Kind: ActFail, Arg: 1},
	}
	in, err := Replay(serviceTiny(), MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Drain(0)
	if err == nil || !strings.Contains(err.Error(), "liveness violated") {
		t.Fatalf("Drain(0) = %v, want liveness violation", err)
	}
	in2, err := Replay(serviceTiny(), MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := in2.Drain(24); err != nil {
		t.Fatal(err)
	}
	if n := in2.sched.QueueLength(); n != 0 {
		t.Fatalf("queue not drained: %d jobs left", n)
	}
}
