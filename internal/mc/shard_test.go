package mc

import (
	"strings"
	"testing"

	"ecosched/internal/shard"
)

// TestTwoShardSplitNonDegenerate pins the universe's federation shape: the
// canonical label hash must actually split the three nodes across both
// shards ({n1, n3} vs {n2}), otherwise the sweep would never cross a shard
// boundary and the variant would silently test nothing new.
func TestTwoShardSplitNonDegenerate(t *testing.T) {
	u := TwoShard()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	pool, err := u.pool()
	if err != nil {
		t.Fatal(err)
	}
	p := shard.New(u.Shards)
	groups := p.Split(pool)
	if len(groups) != 2 {
		t.Fatalf("split into %d groups, want 2", len(groups))
	}
	for i, g := range groups {
		if len(g) == 0 {
			t.Fatalf("shard %d is empty — the 2-shard universe is degenerate", i)
		}
	}
	// j3 needs two nodes; with n1 and n3 in one shard and n2 in the other,
	// both same-shard and cross-shard co-allocations are reachable.
	if got := p.Of(pool.ByName("n1")); got != p.Of(pool.ByName("n3")) {
		t.Errorf("n1 and n3 land in different shards (%d vs %d); update the universe doc", got, p.Of(pool.ByName("n3")))
	}
	if p.Of(pool.ByName("n2")) == p.Of(pool.ByName("n1")) {
		t.Error("n2 shares n1's shard — split degenerate")
	}
}

// TestExploreTwoShardClean is the 2-shard model-checking sweep: every
// interleaving of submits, plan/commit steps, ticks, failures, recoveries,
// and revocations — including fail/recover/revoke sequences that land on
// different shards back to back — must satisfy the full audit safety set,
// now including per-shard live-store coherence (audit invariant 7 runs
// gridsim.VacantStoreCoherent, which checks every shard store against the
// rebuild oracle restricted to its nodes, after every single action).
func TestExploreTwoShardClean(t *testing.T) {
	depth, states := 6, 40000
	if testing.Short() {
		depth, states = 4, 4000
	}
	u := TwoShard()
	res, err := Explore(u, Options{
		MaxDepth:         depth,
		MaxStates:        states,
		Liveness:         true,
		LivenessEvery:    8,
		DeterminismEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("violation in 2-shard universe:\n%s", res.Cex.Script(u))
	}
	if res.States < 100 || res.Transitions <= res.States {
		t.Fatalf("implausibly small sweep: %+v", res)
	}
	t.Logf("2-shard sweep: %d states, %d transitions, deepest %d, truncated %t, liveness %d, determinism %d",
		res.States, res.Transitions, res.Deepest, res.Truncated, res.LivenessChecks, res.DeterminismChecks)
}

// TestTwoShardMatchesDefault pins the federation's determinism contract
// inside the checker: replaying the same trace against the single-domain and
// the 2-shard universe must reach byte-identical canonical grid states —
// sharding changes how the search is organized, never what it schedules.
// The trace crosses the shard boundary deliberately: it fails n2 (the lone
// node of shard 1), plans and commits with one shard degraded, revokes on
// n1 (shard 0), and recovers — so one shard's store churns while the other's
// must neither diverge nor rebuild.
func TestTwoShardMatchesDefault(t *testing.T) {
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActSubmit, Arg: 1}, {Kind: ActSubmit, Arg: 2},
		{Kind: ActPlan}, {Kind: ActCommit},
		{Kind: ActFail, Arg: 1}, {Kind: ActTick},
		{Kind: ActPlan}, {Kind: ActCommit},
		{Kind: ActRevoke, Arg: 0}, {Kind: ActRecover, Arg: 1},
		{Kind: ActPlan}, {Kind: ActCommit},
	}
	single, err := Replay(Default(), MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Replay(TwoShard(), MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ss, sh strings.Builder
	single.grid.CanonicalState(&ss)
	sharded.grid.CanonicalState(&sh)
	if ss.String() != sh.String() {
		t.Fatalf("2-shard replay diverged from single-domain:\n--- single ---\n%s\n--- 2-shard ---\n%s", ss.String(), sh.String())
	}
	if single.Hash() != sharded.Hash() {
		t.Fatalf("canonical hash diverged: %016x != %016x", single.Hash(), sharded.Hash())
	}
}
