package mc

import (
	"fmt"
	"strings"

	"ecosched/internal/fault"
)

// SessionCompatible reports whether the trace has the shape fault.Session
// can reproduce: all submits before the first plan, every plan immediately
// followed by its commit, fault events only between iterations, no bare
// clock ticks, and a commit as the final action (so every event fires
// within Session.Run's iteration loop). For such traces the explorer's
// transcript and a Session driven by the trace's fault plan must be
// byte-identical — the differential suite pins exactly that.
func SessionCompatible(trace []Action) bool {
	sawPlan := false
	open := false
	last := -1
	for i, a := range trace {
		switch a.Kind {
		case ActSubmit:
			if sawPlan {
				return false
			}
		case ActPlan:
			if open {
				return false
			}
			sawPlan = true
			open = true
		case ActCommit:
			if !open {
				return false
			}
			open = false
			last = i
		case ActTick:
			return false
		case ActFail, ActRecover, ActRevoke:
			if open {
				return false
			}
		default:
			return false
		}
	}
	return !open && last == len(trace)-1
}

// SessionTranscripts replays a session-compatible trace twice — once
// through the explorer's instance, once through a fresh fault.Session
// driven by the plan the first replay recorded — and returns both
// transcripts. The caller asserts byte equality.
func SessionTranscripts(u *Universe, trace []Action) (mcT, sessT string, err error) {
	if !SessionCompatible(trace) {
		return "", "", fmt.Errorf("mc: trace is not session-compatible")
	}

	// Explorer side: drive the instance with a transcript writer, then
	// append the summary footer Session.Run writes.
	var mcB strings.Builder
	in, err := Replay(u, MutNone, trace, &mcB)
	if err != nil {
		return "", "", err
	}
	applied := len(in.Events())
	fault.WriteSummary(&mcB, in.Scheduler(), applied, applied)

	// Session side: fresh scheduler, all jobs submitted up front, the
	// recorded events as the fault plan, one Run call per commit.
	iterations := 0
	for _, a := range trace {
		if a.Kind == ActCommit {
			iterations++
		}
	}
	plan, err := fault.NewPlan(in.Events()...)
	if err != nil {
		return "", "", err
	}
	fresh, err := NewInstance(u, MutNone, nil)
	if err != nil {
		return "", "", err
	}
	for _, a := range trace {
		if a.Kind == ActSubmit {
			if err := fresh.sched.Submit(u.buildJob(a.Arg)); err != nil {
				return "", "", err
			}
		}
	}
	var sessB strings.Builder
	sess, err := fault.NewSession(fresh.sched, plan, &sessB)
	if err != nil {
		return "", "", err
	}
	if err := sess.Run(iterations); err != nil {
		return "", "", err
	}
	return mcB.String(), sessB.String(), nil
}
