package mc

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"ecosched/internal/codec"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// Instance is one live replay of a trace: a fresh grid, scheduler, and
// auditor driven action by action. The explorer builds one per candidate
// successor; the differential tests reuse it as a transcript generator.
type Instance struct {
	u     *Universe
	grid  *gridsim.Grid
	sched *metasched.Scheduler
	audit *fault.Audit
	// it is the open plan/apply iteration, nil between iterations. Batch
	// universes only.
	it *metasched.Iteration
	// svc is the continuous-service wrapper, nil in batch universes. When
	// set, submits and fault events route through the service so each
	// enqueues its evaluation, and the round below replaces it.
	svc *metasched.Service
	// round is the open evaluate/apply round, nil between rounds. Service
	// universes only.
	round *metasched.Round
	// tickQueued marks a pending explicit tick evaluation (ActEnqueue);
	// cleared when ActEvaluate consumes the queue. Mirrored by the
	// explorer's frontier metadata.
	tickQueued bool
	// submitted marks jobs already handed to the scheduler.
	submitted []bool
	// events are the fault events applied so far, stamped with the clock
	// at application time — exactly the plan a fault.Session would need
	// to reproduce this trace.
	events []fault.Event
	// w receives the session-format transcript (io.Discard by default).
	w   io.Writer
	mut Mutation
	// zombies holds, per node, the reservations its last failure
	// cancelled; MutResurrect force-books them again on recovery.
	zombies map[int][]gridsim.Task
}

// NewInstance builds a fresh instance of the universe. The transcript
// writer may be nil; mut seeds a deliberate bug (MutNone for the real
// protocol).
func NewInstance(u *Universe, mut Mutation, w io.Writer) (*Instance, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if w == nil {
		w = io.Discard
	}
	pool, err := u.pool()
	if err != nil {
		return nil, err
	}
	grid, err := gridsim.New(pool)
	if err != nil {
		return nil, err
	}
	sched, err := metasched.New(u.config(), grid)
	if err != nil {
		return nil, err
	}
	var svc *metasched.Service
	if u.Service {
		svc, err = metasched.NewService(sched, metasched.ServiceConfig{})
		if err != nil {
			return nil, err
		}
	}
	return &Instance{
		svc:       svc,
		u:         u,
		grid:      grid,
		sched:     sched,
		audit:     fault.NewAudit(sched),
		submitted: make([]bool, len(u.Jobs)),
		w:         w,
		mut:       mut,
		zombies:   map[int][]gridsim.Task{},
	}, nil
}

// Scheduler exposes the driven scheduler (for drains and summaries).
func (in *Instance) Scheduler() *metasched.Scheduler { return in.sched }

// Events returns the fault events applied so far with their recorded times.
func (in *Instance) Events() []fault.Event { return in.events }

// Feasible reports whether the action is structurally applicable in the
// current state: no duplicate submits, plan/commit strictly alternating,
// fail/revoke only on live nodes, recover only on failed ones. The
// explorer enumerates only feasible actions; the minimizer skips infeasible
// ones left behind by deletions.
func (in *Instance) Feasible(a Action) bool {
	switch a.Kind {
	case ActSubmit:
		return !in.submitted[a.Arg]
	case ActPlan:
		return in.svc == nil && in.it == nil
	case ActCommit:
		return in.svc == nil && in.it != nil
	case ActEnqueue:
		// A second explicit tick eval would coalesce into the pending one —
		// a self-loop the explorer has no reason to expand.
		return in.svc != nil && !in.tickQueued
	case ActEvaluate:
		return in.svc != nil && in.round == nil
	case ActApply:
		return in.svc != nil && in.round != nil
	case ActCrash:
		return in.svc != nil && in.round == nil
	case ActTick:
		return true
	case ActFail, ActRevoke:
		return !in.grid.NodeFailed(resource.NodeID(a.Arg))
	case ActRecover:
		return in.grid.NodeFailed(resource.NodeID(a.Arg))
	default:
		return false
	}
}

// Apply executes one action against the live session and then checks the
// full audit safety set. Any returned error — an invariant violation or an
// unexpected scheduler failure — marks the trace as a counterexample.
func (in *Instance) Apply(a Action) error {
	switch a.Kind {
	case ActSubmit:
		j := in.u.buildJob(a.Arg)
		var err error
		if in.svc != nil {
			err = in.svc.Submit(j)
		} else {
			err = in.sched.Submit(j)
		}
		if err != nil {
			return err
		}
		in.submitted[a.Arg] = true
	case ActEnqueue:
		in.svc.EnqueueTick()
		in.tickQueued = true
	case ActEvaluate:
		r, err := in.svc.BeginRound()
		if err != nil {
			return err
		}
		if err := r.Evaluate(); err != nil {
			return err
		}
		in.round = r
		// BeginRound consumed every due evaluation; tick evals are due
		// immediately, so a pending explicit tick never survives a round.
		in.tickQueued = false
	case ActApply:
		if in.mut == MutBlindApply {
			in.blindApply()
		}
		if err := in.round.Apply(); err != nil {
			return err
		}
		rep, err := in.round.Finish()
		if err != nil {
			return err
		}
		in.round = nil
		fault.WriteIterationReport(in.w, rep)
		for _, p := range rep.Placed {
			in.audit.JobRescheduled(p.Job.Name)
		}
	case ActPlan:
		it, err := in.sched.BeginIteration()
		if err != nil {
			return err
		}
		if err := it.Plan(); err != nil {
			return err
		}
		in.it = it
	case ActCommit:
		if err := in.it.Apply(); err != nil {
			return err
		}
		rep, err := in.it.Finish()
		if err != nil {
			return err
		}
		in.it = nil
		fault.WriteIterationReport(in.w, rep)
		for _, p := range rep.Placed {
			in.audit.JobRescheduled(p.Job.Name)
		}
	case ActTick:
		if err := in.grid.Advance(in.grid.Now().Add(in.u.Step)); err != nil {
			return err
		}
	case ActCrash:
		if err := in.crash(); err != nil {
			return err
		}
	case ActFail, ActRecover, ActRevoke:
		if err := in.applyEvent(a); err != nil {
			return err
		}
	default:
		return fmt.Errorf("mc: unknown action kind %d", int(a.Kind))
	}
	return in.check()
}

// blindApply seeds the MutBlindApply bug: if the open round's pending plan
// is stale, its placements are force-booked exactly as a non-re-validating
// applier would write them — no overlap, clock, or failed-node checks, no
// owner credit, no store maintenance. The real apply still runs afterwards,
// so a window the grid would have accepted books twice.
func (in *Instance) blindApply() {
	p := in.round.Plan()
	if !p.Stale(in.grid.Epoch()) {
		return
	}
	for _, ch := range p.Choices {
		for _, pl := range ch.Window.Placements {
			in.grid.ForceBook(gridsim.Task{
				Name: ch.Job.Name,
				Node: pl.Source.Node.ID,
				Span: pl.Used,
				Cost: pl.Cost(),
			})
		}
	}
}

// applyEvent injects one environment event through the scheduler's fault
// hooks with the auditor's before/after protocol, mirroring fault.Session
// line for line so session-compatible traces replay byte-identically. In
// service mode the hooks route through the service so each event also
// enqueues its evaluation.
func (in *Instance) applyEvent(a Action) error {
	node := in.u.Nodes[a.Arg]
	id := resource.NodeID(a.Arg)
	ev := fault.Event{At: in.grid.Now(), Node: node.Name}
	in.audit.BeginEvent()
	var requeued []string
	var err error
	switch a.Kind {
	case ActFail:
		ev.Kind = fault.Fail
		if in.mut == MutResurrect {
			in.zombies[a.Arg] = in.liveVOTasks(id)
		}
		var refundBase float64
		if in.mut == MutDoubleRefund {
			byDomain, _ := in.grid.OwnerIncome()
			refundBase = float64(byDomain[node.Domain])
		}
		if in.svc != nil {
			requeued, err = in.svc.HandleNodeFailure(node.Name)
		} else {
			requeued, err = in.sched.HandleNodeFailure(node.Name)
		}
		if err == nil && in.mut == MutDoubleRefund {
			byDomain, _ := in.grid.OwnerIncome()
			if refund := refundBase - float64(byDomain[node.Domain]); refund > 0 {
				// The grid already refunded the cancellations once;
				// subtract the same amount again.
				in.grid.AdjustIncome(node.Domain, -sim.Money(refund))
			}
		}
	case ActRecover:
		ev.Kind = fault.Recover
		if in.svc != nil {
			err = in.svc.HandleNodeRecovery(node.Name)
		} else {
			err = in.sched.HandleNodeRecovery(node.Name)
		}
		if err == nil && in.mut == MutResurrect {
			for _, t := range in.zombies[a.Arg] {
				in.grid.ForceBook(t)
			}
			in.zombies[a.Arg] = nil
		}
	case ActRevoke:
		ev.Kind = fault.Revoke
		ev.Span = in.u.RevokeSpan
		if in.svc != nil {
			requeued, err = in.svc.HandleRevocation(node.Name, in.u.RevokeSpan)
		} else {
			requeued, err = in.sched.HandleRevocation(node.Name, in.u.RevokeSpan)
		}
	}
	if err != nil {
		return fmt.Errorf("mc: applying %v: %w", ev, err)
	}
	cancelled := in.audit.EndEvent(ev)
	in.events = append(in.events, ev)
	fmt.Fprintf(in.w, "fault %v cancelled=%d requeued=%v drops=%d\n",
		ev, len(cancelled), requeued, len(in.sched.DroppedJobs()))
	return nil
}

// crash simulates a process crash at a committed boundary followed by
// recovery from a durability checkpoint: the complete canonical state —
// grid, scheduler, service — is exported, encoded through the codec's
// checkpoint wire format, decoded back, and restored in place into the same
// objects (the auditor and the transcript writer keep their pointers). The
// protocol property is that durability is invisible: the post-recovery hash
// must equal the pre-crash hash, and a divergence is a safety violation.
// MutLossyCrash seeds the classic bug — recovery that silently drops the
// tail of the evaluation queue — which this check must catch.
func (in *Instance) crash() error {
	before := in.Hash()
	svcState, err := in.svc.ExportState()
	if err != nil {
		return err
	}
	cp := &codec.Checkpoint{
		Grid:    in.grid.ExportState(),
		Sched:   in.sched.ExportState(),
		Service: svcState,
	}
	data, err := codec.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	restored, err := codec.DecodeCheckpoint(data)
	if err != nil {
		return err
	}
	if in.mut == MutLossyCrash && len(restored.Service.Pending) > 0 {
		restored.Service.Pending = restored.Service.Pending[:len(restored.Service.Pending)-1]
	}
	if err := in.grid.RestoreState(restored.Grid); err != nil {
		return err
	}
	if err := in.sched.RestoreState(restored.Sched); err != nil {
		return err
	}
	if err := in.svc.RestoreState(restored.Service); err != nil {
		return err
	}
	if after := in.Hash(); after != before {
		return fmt.Errorf("mc: crash recovery changed committed state: hash %016x -> %016x", before, after)
	}
	return nil
}

// liveVOTasks snapshots the node's unfinished VO reservations — the set a
// failure right now would cancel.
func (in *Instance) liveVOTasks(id resource.NodeID) []gridsim.Task {
	var out []gridsim.Task
	for _, t := range in.grid.Tasks(id) {
		if !t.Local && t.Span.End > in.grid.Now() {
			out = append(out, t)
		}
	}
	return out
}

// check runs the audit and converts any violation — including ones the
// event hooks recorded — into an error. Instances are single-trace, so a
// non-empty violation log always means this trace is unsafe.
func (in *Instance) check() error {
	in.audit.Check()
	if v := in.audit.Violations(); len(v) > 0 {
		return fmt.Errorf("mc: safety violated: %s", strings.Join(v, "; "))
	}
	return nil
}

// Hash returns the FNV-64a digest of the complete canonical state: grid,
// scheduler, open iteration, and the auditor's cancelled-reservation watch
// list. Two states with equal hashes are treated as the same node of the
// transition system.
func (in *Instance) Hash() uint64 {
	var b strings.Builder
	in.grid.CanonicalState(&b)
	in.sched.CanonicalState(&b)
	if in.it != nil {
		in.it.CanonicalState(&b)
	}
	if in.svc != nil {
		in.svc.CanonicalState(&b)
	}
	if in.round != nil {
		in.round.Iteration().CanonicalState(&b)
	}
	for _, k := range in.audit.CancelledKeys() {
		b.WriteString("watch ")
		b.WriteString(k)
		b.WriteByte('\n')
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}

// Drain is the liveness check: close any open iteration, recover every
// failed node, then run fault-free iterations until the queue empties. If
// the queue is still non-empty after maxIter iterations some submitted job
// neither placed nor dropped — a liveness violation.
func (in *Instance) Drain(maxIter int) error {
	if in.it != nil {
		if err := in.it.Apply(); err != nil {
			return err
		}
		if _, err := in.it.Finish(); err != nil {
			return err
		}
		in.it = nil
		if err := in.check(); err != nil {
			return err
		}
	}
	if in.round != nil {
		if err := in.round.Apply(); err != nil {
			return err
		}
		if _, err := in.round.Finish(); err != nil {
			return err
		}
		in.round = nil
		if err := in.check(); err != nil {
			return err
		}
	}
	for i := range in.u.Nodes {
		if in.grid.NodeFailed(resource.NodeID(i)) {
			if err := in.applyEvent(Action{Kind: ActRecover, Arg: i}); err != nil {
				return err
			}
			if err := in.check(); err != nil {
				return err
			}
		}
	}
	for i := 0; i < maxIter && in.sched.QueueLength() > 0; i++ {
		var rep *metasched.IterationReport
		var err error
		if in.svc != nil {
			// Service drain: full tick rounds, so backoff-gated requeue
			// evaluations become due as the clock advances.
			rep, err = in.svc.Tick()
			in.tickQueued = false
		} else {
			rep, err = in.sched.RunIteration()
		}
		if err != nil {
			return err
		}
		for _, p := range rep.Placed {
			in.audit.JobRescheduled(p.Job.Name)
		}
		if err := in.check(); err != nil {
			return err
		}
	}
	if n := in.sched.QueueLength(); n > 0 {
		return fmt.Errorf("mc: liveness violated: %d job(s) still queued after fault-free drain of %d iterations",
			n, maxIter)
	}
	return nil
}

// Replay builds a fresh instance and applies the whole trace, failing on
// the first violating action. The returned instance is the reached state.
func Replay(u *Universe, mut Mutation, trace []Action, w io.Writer) (*Instance, error) {
	in, err := NewInstance(u, mut, w)
	if err != nil {
		return nil, err
	}
	for i, a := range trace {
		if err := in.Apply(a); err != nil {
			return in, fmt.Errorf("mc: action %d (%s): %w", i, a.Render(u), err)
		}
	}
	return in, nil
}

// replayLenient applies the trace skipping structurally infeasible actions
// — the minimizer's deletions can orphan a commit or recover, and skipping
// keeps the shorter candidate meaningful. It returns the first violation
// error, or nil if the trace is clean.
func replayLenient(u *Universe, mut Mutation, trace []Action) (*Instance, error) {
	in, err := NewInstance(u, mut, nil)
	if err != nil {
		return nil, err
	}
	for _, a := range trace {
		if !in.Feasible(a) {
			continue
		}
		if err := in.Apply(a); err != nil {
			return in, err
		}
	}
	return in, nil
}
