// Package mc is a bounded exhaustive model checker for the schedule/commit
// protocol: it enumerates every interleaving of scheduler steps and
// environment events over a tiny universe (2–3 nodes, 2–3 jobs) and checks
// the full safety, determinism, and liveness property set after every
// transition. Crucially it drives the REAL metasched/gridsim/fault code —
// there is no parallel model to drift out of sync; the explored transition
// system is the production scheduler itself.
//
// # States and transitions
//
// A state is a complete session: grid clock, bookings, income ledgers,
// failure marks, scheduler queue/placed/dropped/retry ledgers, any open
// plan/apply iteration, and the auditor's cancelled-reservation watch list.
// States are identified by hashing the canonical serializations
// (gridsim.Grid.CanonicalState, metasched.Scheduler.CanonicalState,
// metasched.Iteration.CanonicalState, fault.Audit.CancelledKeys) — equal
// hashes mean indistinguishable futures, so interleavings that commute
// collapse to one node.
//
// The action alphabet is {submit job, plan (BeginIteration+Plan), commit
// (Apply+Finish), retry-tick (clock advance), fail node, recover node,
// revoke interval}. Because plan and commit are separate actions, every
// schedule/commit race is reachable: a node failure, revocation, or clock
// advance can land between the optimizer choosing a window and the grid
// committing it, which is exactly the optimistic-concurrency path Apply
// must handle by postponing the stale job.
//
// # Exploration
//
// The scheduler has no snapshot/restore, so the explorer replays each
// candidate trace from the root: breadth-first over the frontier, one fresh
// replay per successor, bounded by depth and distinct-state count. Per-node
// metadata (submitted set, failed set, open-iteration flag) makes enabled
// actions computable without replaying the parent.
//
// # Properties
//
//   - Safety: the full fault.Audit invariant set after every transition —
//     booking validity, non-negative income, job and cancellation
//     conservation, no live reservation on failed nodes, no resurrection.
//   - Determinism: a sampled re-execution of the trace must reproduce the
//     state hash bit for bit.
//   - Liveness: from sampled leaf states, a bounded fault-free drain
//     (recover everything, iterate) must land every submitted job in
//     placed or dropped — nothing queues forever.
//
// A violation is minimized by greedy action deletion and rendered as a
// replayable script (submit lines + step actions) plus the equivalent
// fault-plan DSL, so a model-checker finding becomes a deterministic
// regression test input.
package mc
