package mc

import (
	"strings"
	"testing"

	"ecosched/internal/sim"
)

// TestParseMutation pins the CLI mutation spellings.
func TestParseMutation(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mutation
	}{
		{"", MutNone}, {"none", MutNone},
		{"double-refund", MutDoubleRefund}, {"resurrect", MutResurrect},
	} {
		got, err := ParseMutation(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMutation(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" || strings.Contains(got.String(), "mutation(") {
			t.Fatalf("mutation %d has no name", int(got))
		}
	}
	if _, err := ParseMutation("skip-refund"); err == nil {
		t.Fatal("unknown mutation accepted")
	}
}

// TestParseScriptErrors pins the script parser's rejection of malformed
// lines — a corrupted counterexample artifact must fail loudly, not replay
// something else.
func TestParseScriptErrors(t *testing.T) {
	u := Tiny()
	for _, script := range []string{
		"launch j1",       // unknown keyword
		"submit",          // missing job
		"submit ghost",    // unknown job
		"fail",            // missing node
		"fail n9",         // unknown node
		"recover n9",      // unknown node
		"revoke",          // missing node
		"plan now",        // stray argument
		"commit j1",       // stray argument
		"tick tock",       // stray argument
		"submit j1 twice", // stray argument
	} {
		if _, err := ParseScript(u, script); err == nil {
			t.Errorf("ParseScript(%q) accepted", script)
		}
	}
}

// TestUniverseValidate pins the explorer's size guards.
func TestUniverseValidate(t *testing.T) {
	bad := func(mutate func(*Universe)) *Universe {
		u := Tiny()
		mutate(u)
		return u
	}
	for name, u := range map[string]*Universe{
		"no-nodes":   bad(func(u *Universe) { u.Nodes = nil }),
		"no-jobs":    bad(func(u *Universe) { u.Jobs = nil }),
		"too-many":   bad(func(u *Universe) { u.Jobs = make([]JobSpec, 9) }),
		"zero-step":  bad(func(u *Universe) { u.Step = 0 }),
		"bad-revoke": bad(func(u *Universe) { u.RevokeSpan = sim.Interval{Start: 9, End: 9} }),
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
		if _, err := NewInstance(u, MutNone, nil); err == nil {
			t.Errorf("%s instance built", name)
		}
		if _, err := Explore(u, Options{}); err == nil {
			t.Errorf("%s explored", name)
		}
	}
	if err := Tiny().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCompatibleShapes pins the compatibility predicate on every
// rejected shape.
func TestSessionCompatibleShapes(t *testing.T) {
	sub := Action{Kind: ActSubmit, Arg: 0}
	plan := Action{Kind: ActPlan}
	commit := Action{Kind: ActCommit}
	fail := Action{Kind: ActFail, Arg: 0}
	for name, tc := range map[string]struct {
		trace []Action
		want  bool
	}{
		"canonical":         {[]Action{sub, fail, plan, commit}, true},
		"two-iterations":    {[]Action{sub, plan, commit, fail, plan, commit}, true},
		"submit-after-plan": {[]Action{plan, commit, sub, plan, commit}, false},
		"tick":              {[]Action{sub, Action{Kind: ActTick}, plan, commit}, false},
		"fault-mid-iter":    {[]Action{sub, plan, fail, commit}, false},
		"open-at-end":       {[]Action{sub, plan}, false},
		"trailing-fault":    {[]Action{sub, plan, commit, fail}, false},
		"no-iteration":      {[]Action{sub, fail}, false},
	} {
		if got := SessionCompatible(tc.trace); got != tc.want {
			t.Errorf("%s: SessionCompatible = %t, want %t", name, got, tc.want)
		}
	}
	if _, _, err := SessionTranscripts(Tiny(), []Action{sub}); err == nil {
		t.Fatal("incompatible trace accepted by SessionTranscripts")
	}
}

// TestDrainReportsStuckJob drives Drain into its liveness-failure branch
// with a zero-iteration budget: the submitted job cannot leave the queue,
// so the drain must report it stuck.
func TestDrainReportsStuckJob(t *testing.T) {
	// Plan first, then crash every node: the open iteration's windows are
	// all stale, so closing it postpones the job back into the queue, and
	// a zero-iteration budget cannot drain it.
	stuck := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActPlan},
		{Kind: ActFail, Arg: 0}, {Kind: ActFail, Arg: 1},
	}
	in, err := Replay(Tiny(), MutNone, stuck, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Drain(0)
	if err == nil || !strings.Contains(err.Error(), "liveness violated") {
		t.Fatalf("Drain(0) = %v, want liveness violation", err)
	}
	// With a real budget the same state drains clean (and closes the open
	// iteration plus recovers the failed nodes on the way).
	in2, err := Replay(Tiny(), MutNone, stuck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := in2.Drain(24); err != nil {
		t.Fatal(err)
	}
}

// TestFeasibleMatchesEnabled cross-checks the frontier metadata against the
// live instance: on a random-ish walk the actions the explorer would
// enumerate from metadata are exactly the ones the instance deems feasible.
func TestFeasibleMatchesEnabled(t *testing.T) {
	u := Default()
	trace := []Action{
		{Kind: ActSubmit, Arg: 1}, {Kind: ActPlan}, {Kind: ActFail, Arg: 2},
		{Kind: ActCommit}, {Kind: ActSubmit, Arg: 0}, {Kind: ActTick},
		{Kind: ActRevoke, Arg: 0}, {Kind: ActPlan},
	}
	in, err := NewInstance(u, MutNone, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := node{}
	all := func() []Action {
		var out []Action
		for j := range u.Jobs {
			out = append(out, Action{Kind: ActSubmit, Arg: j})
		}
		out = append(out, Action{Kind: ActPlan}, Action{Kind: ActCommit}, Action{Kind: ActTick})
		for i := range u.Nodes {
			out = append(out, Action{Kind: ActFail, Arg: i},
				Action{Kind: ActRecover, Arg: i}, Action{Kind: ActRevoke, Arg: i})
		}
		return out
	}
	for step, a := range trace {
		enabled := map[Action]bool{}
		for _, e := range u.enabled(n) {
			enabled[e] = true
		}
		for _, cand := range all() {
			if cand.Kind == ActPlan && enabled[Action{Kind: ActCommit}] {
				// enabled() lists commit for an open iteration where
				// Feasible would also reject plan; both agree plan is off.
				continue
			}
			if got := in.Feasible(cand); got != enabled[cand] {
				t.Fatalf("step %d: Feasible(%s) = %t, enabled = %t",
					step, cand.Render(u), got, enabled[cand])
			}
		}
		if err := in.Apply(a); err != nil {
			t.Fatal(err)
		}
		full := make([]Action, step+1)
		copy(full, trace[:step+1])
		n = n.child(a, full)
	}
}
