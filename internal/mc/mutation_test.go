package mc

import (
	"strings"
	"testing"
)

// TestMutationsCaught is the checker's self-test: with a deliberately
// seeded protocol bug the sweep must end in a violation, the counterexample
// must be minimized (1-minimal: removing any action loses the bug), and the
// printed script must replay to the same violation — a model-checker
// finding is a deterministic regression input, not a one-off log line.
func TestMutationsCaught(t *testing.T) {
	cases := []struct {
		mutation Mutation
		// service runs the mutation in the service universe (blind-apply
		// only fires at ActApply).
		service bool
		// want is a substring of the violation the audit must attribute
		// the bug to.
		want string
		// maxLen bounds the minimized counterexample; 0 means unchecked.
		maxLen int
	}{
		{MutDoubleRefund, false, "negative", 0},
		{MutResurrect, false, "must only remove capacity", 0},
		// The applier that skips re-validation writes a stale plan's
		// placements blind; the checker must pin it within six actions
		// (submit, evaluate, a mutating event, apply — plus slack).
		{MutBlindApply, true, "", 6},
		// Recovery that drops the newest pending evaluation diverges from
		// the pre-crash hash as soon as the queue is non-empty: submit then
		// crash is the whole counterexample.
		{MutLossyCrash, true, "crash recovery changed", 2},
	}
	for _, tc := range cases {
		t.Run(tc.mutation.String(), func(t *testing.T) {
			u := Tiny()
			u.Service = tc.service
			opts := Options{MaxDepth: 6, MaxStates: 40000, Mutation: tc.mutation}
			res, err := Explore(u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cex == nil {
				t.Fatalf("seeded mutation survived %d states / %d transitions undetected",
					res.States, res.Transitions)
			}
			cex := res.Cex
			if cex.Property != PropSafety {
				t.Fatalf("caught as %s, want safety: %s", cex.Property, cex.Detail)
			}
			if !strings.Contains(cex.Detail, tc.want) {
				t.Fatalf("violation %q does not mention %q", cex.Detail, tc.want)
			}
			if !cex.Minimized {
				t.Fatal("counterexample not minimized")
			}
			if tc.maxLen > 0 && len(cex.Trace) > tc.maxLen {
				t.Fatalf("counterexample has %d actions, want <= %d:\n%s",
					len(cex.Trace), tc.maxLen, cex.Script(u))
			}

			// 1-minimality: every remaining action is necessary.
			for i := range cex.Trace {
				cand := make([]Action, 0, len(cex.Trace)-1)
				cand = append(cand, cex.Trace[:i]...)
				cand = append(cand, cex.Trace[i+1:]...)
				if _, ok := reproduces(u, opts, PropSafety, cand); ok {
					t.Fatalf("dropping action %d (%s) still reproduces — not minimal",
						i, cex.Trace[i].Render(u))
				}
			}

			// Replayability: parse the printed script back and replay it
			// under the same mutation; the violation must reproduce.
			script := cex.Script(u)
			parsed, err := ParseScript(u, script)
			if err != nil {
				t.Fatalf("counterexample script does not parse: %v\n%s", err, script)
			}
			if len(parsed) != len(cex.Trace) {
				t.Fatalf("script round trip changed trace length: %d -> %d", len(cex.Trace), len(parsed))
			}
			if _, err := Replay(u, tc.mutation, parsed, nil); err == nil {
				t.Fatalf("replayed script did not reproduce the violation:\n%s", script)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("replayed script failed differently: %v", err)
			}

			// The same trace on the unmutated protocol is clean: the
			// checker is pointing at the seeded bug, not a real one.
			if _, err := Replay(u, MutNone, parsed, nil); err != nil {
				t.Fatalf("counterexample trace violates the real protocol too: %v", err)
			}
			t.Logf("caught %s in %d states with %d-action counterexample:\n%s",
				tc.mutation, res.States, len(cex.Trace), script)
		})
	}
}
