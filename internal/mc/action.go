package mc

import (
	"fmt"
	"strings"
)

// ActionKind enumerates the explorer's transition alphabet.
type ActionKind int

const (
	// ActSubmit submits job Arg to the scheduler queue.
	ActSubmit ActionKind = iota
	// ActPlan opens an iteration: BeginIteration (seed, freeze batch)
	// followed by Plan (publish, search, optimize). Read-only on the grid,
	// so the chosen combination is optimistic.
	ActPlan
	// ActCommit closes the open iteration: Apply (commit windows, requeue
	// the rest) followed by Finish (advance the clock one step).
	ActCommit
	// ActTick advances the clock one step without scheduling — the retry
	// backoff timer firing, or dead time between iterations.
	ActTick
	// ActFail crashes node Arg.
	ActFail
	// ActRecover re-joins failed node Arg.
	ActRecover
	// ActRevoke reclaims the universe's RevokeSpan on node Arg.
	ActRevoke
	// ActEnqueue queues the service's periodic tick evaluation without
	// opening a round — the timer firing while the loop is busy elsewhere.
	// Service universes only.
	ActEnqueue
	// ActEvaluate opens an evaluation round: BeginRound (consume the due
	// evaluations, freeze the batch) followed by Evaluate (plan against the
	// epoch-stamped snapshot). Service universes only; the service-mode
	// counterpart of ActPlan.
	ActEvaluate
	// ActApply closes the open round: the serial applier re-validates the
	// pending plan window by window, requeues stale rejections with backoff,
	// and Finish advances the clock. Service universes only; the counterpart
	// of ActCommit.
	ActApply
	// ActCrash simulates a process crash at a committed boundary followed by
	// durability recovery: the complete canonical state is exported through
	// the codec's checkpoint wire format, decoded back, and restored in
	// place. The post-recovery state must hash-equal the pre-crash committed
	// state — a divergence is a safety violation. Service universes only,
	// and only between rounds (an open round is by definition uncommitted).
	ActCrash
)

// Action is one transition: a kind plus a job index (ActSubmit) or node
// index (ActFail/ActRecover/ActRevoke); Arg is unused otherwise.
type Action struct {
	Kind ActionKind
	Arg  int
}

// Render writes the action in the replay-script syntax: the keyword alone
// for plan/commit/tick, keyword plus the job or node name otherwise.
func (a Action) Render(u *Universe) string {
	switch a.Kind {
	case ActSubmit:
		return "submit " + u.Jobs[a.Arg].Name
	case ActPlan:
		return "plan"
	case ActCommit:
		return "commit"
	case ActTick:
		return "tick"
	case ActFail:
		return "fail " + u.Nodes[a.Arg].Name
	case ActRecover:
		return "recover " + u.Nodes[a.Arg].Name
	case ActRevoke:
		return "revoke " + u.Nodes[a.Arg].Name
	case ActEnqueue:
		return "enqueue"
	case ActEvaluate:
		return "evaluate"
	case ActApply:
		return "apply"
	case ActCrash:
		return "crash"
	default:
		return fmt.Sprintf("action(%d,%d)", int(a.Kind), a.Arg)
	}
}

// RenderTrace writes a whole trace, one action per line.
func RenderTrace(u *Universe, trace []Action) string {
	var b strings.Builder
	for _, a := range trace {
		b.WriteString(a.Render(u))
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseScript parses a replay script back into a trace: one action per
// line, '#' comments and blank lines ignored. Render and ParseScript are
// inverses, which is what makes a printed counterexample replayable.
func ParseScript(u *Universe, script string) ([]Action, error) {
	var trace []Action
	for ln, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var a Action
		switch fields[0] {
		case "plan", "commit", "tick", "enqueue", "evaluate", "apply", "crash":
			if len(fields) != 1 {
				return nil, fmt.Errorf("mc: line %d: %q takes no argument", ln+1, fields[0])
			}
			switch fields[0] {
			case "plan":
				a.Kind = ActPlan
			case "commit":
				a.Kind = ActCommit
			case "tick":
				a.Kind = ActTick
			case "enqueue":
				a.Kind = ActEnqueue
			case "evaluate":
				a.Kind = ActEvaluate
			case "apply":
				a.Kind = ActApply
			case "crash":
				a.Kind = ActCrash
			}
		case "submit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("mc: line %d: submit needs a job name", ln+1)
			}
			j := jobIndex(u, fields[1])
			if j < 0 {
				return nil, fmt.Errorf("mc: line %d: unknown job %q", ln+1, fields[1])
			}
			a = Action{Kind: ActSubmit, Arg: j}
		case "fail", "recover", "revoke":
			if len(fields) != 2 {
				return nil, fmt.Errorf("mc: line %d: %s needs a node name", ln+1, fields[0])
			}
			n := nodeIndex(u, fields[1])
			if n < 0 {
				return nil, fmt.Errorf("mc: line %d: unknown node %q", ln+1, fields[1])
			}
			switch fields[0] {
			case "fail":
				a = Action{Kind: ActFail, Arg: n}
			case "recover":
				a = Action{Kind: ActRecover, Arg: n}
			case "revoke":
				a = Action{Kind: ActRevoke, Arg: n}
			}
		default:
			return nil, fmt.Errorf("mc: line %d: unknown action %q", ln+1, fields[0])
		}
		trace = append(trace, a)
	}
	return trace, nil
}

func jobIndex(u *Universe, name string) int {
	for i, j := range u.Jobs {
		if j.Name == name {
			return i
		}
	}
	return -1
}

func nodeIndex(u *Universe, name string) int {
	for i, n := range u.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}
