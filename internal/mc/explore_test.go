package mc

import (
	"strings"
	"testing"
)

// TestExploreTinyClean sweeps the tiny universe with all properties on: the
// schedule/commit protocol must survive every interleaving of submits,
// plan/commit steps, ticks, failures, recoveries, and revocations reachable
// within the depth bound, with zero safety, liveness, or determinism
// violations.
func TestExploreTinyClean(t *testing.T) {
	depth, states := 6, 40000
	if testing.Short() {
		depth, states = 4, 4000
	}
	res, err := Explore(Tiny(), Options{
		MaxDepth:         depth,
		MaxStates:        states,
		Liveness:         true,
		LivenessEvery:    8,
		DeterminismEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("violation in clean universe:\n%s", res.Cex.Script(Tiny()))
	}
	if res.States < 100 || res.Transitions <= res.States {
		t.Fatalf("implausibly small sweep: %+v", res)
	}
	if res.DeterminismChecks == 0 {
		t.Fatal("determinism sampling never ran")
	}
	if res.LivenessChecks == 0 && !res.Truncated {
		t.Fatal("liveness sampling never ran on a full sweep")
	}
	t.Logf("tiny sweep: %d states, %d transitions, deepest %d, truncated %t, liveness %d, determinism %d",
		res.States, res.Transitions, res.Deepest, res.Truncated, res.LivenessChecks, res.DeterminismChecks)
}

// TestExploreDefaultUniverseScale is the acceptance sweep: the default CI
// universe must yield at least 100k distinct canonical states within the CI
// bounds, all clean. Skipped under -short (it is the expensive test of the
// package).
func TestExploreDefaultUniverseScale(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance sweep is long; run without -short")
	}
	res, err := Explore(Default(), Options{
		MaxDepth:         8,
		MaxStates:        120000,
		DeterminismEvery: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("violation in clean universe:\n%s", res.Cex.Script(Default()))
	}
	if res.States < 100000 {
		t.Fatalf("acceptance floor missed: %d distinct states, want >= 100000", res.States)
	}
	t.Logf("default sweep: %d states, %d transitions, deepest %d, truncated %t",
		res.States, res.Transitions, res.Deepest, res.Truncated)
}

// TestScriptRoundTrip pins Render/ParseScript as inverses over every action
// kind, which is what makes printed counterexamples replayable.
func TestScriptRoundTrip(t *testing.T) {
	u := Default()
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActSubmit, Arg: 2},
		{Kind: ActFail, Arg: 1}, {Kind: ActPlan}, {Kind: ActTick},
		{Kind: ActCommit}, {Kind: ActRecover, Arg: 1}, {Kind: ActRevoke, Arg: 0},
	}
	script := RenderTrace(u, trace)
	back, err := ParseScript(u, script+"\n# trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip changed length: %d -> %d", len(trace), len(back))
	}
	for i := range trace {
		if back[i] != trace[i] {
			t.Fatalf("action %d: %v -> %v", i, trace[i], back[i])
		}
	}
}

// TestReplayDeterministic pins the determinism property directly: replaying
// the same trace twice reaches the same canonical hash.
func TestReplayDeterministic(t *testing.T) {
	u := Default()
	trace := []Action{
		{Kind: ActSubmit, Arg: 0}, {Kind: ActSubmit, Arg: 1},
		{Kind: ActPlan}, {Kind: ActFail, Arg: 0}, {Kind: ActCommit},
		{Kind: ActTick}, {Kind: ActRecover, Arg: 0},
		{Kind: ActPlan}, {Kind: ActCommit},
	}
	a, err := Replay(u, MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(u, MutNone, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("replay diverged: %016x != %016x", a.Hash(), b.Hash())
	}
	var sa, sb strings.Builder
	a.grid.CanonicalState(&sa)
	b.grid.CanonicalState(&sb)
	if sa.String() != sb.String() {
		t.Fatalf("grid canonical state diverged:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}
