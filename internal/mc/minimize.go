package mc

import (
	"fmt"
	"strings"

	"ecosched/internal/fault"
)

// Property names the violated property class of a counterexample.
type Property string

const (
	// PropSafety is an audit invariant breach or scheduler error.
	PropSafety Property = "safety"
	// PropLiveness is a job stuck in the queue after the fault-free drain.
	PropLiveness Property = "liveness"
	// PropDeterminism is a trace whose re-execution diverges.
	PropDeterminism Property = "determinism"
)

// Counterexample is a violating trace, greedily minimized, with everything
// needed to reproduce it outside the explorer: the replay script and the
// equivalent fault-plan DSL.
type Counterexample struct {
	Property Property
	// Detail is the violation message from the first failing probe.
	Detail string
	// Trace is the minimized action sequence.
	Trace []Action
	// Minimized reports whether minimization ran (it is skipped for
	// determinism violations, where a shorter trace proves nothing about
	// the original divergence).
	Minimized bool
}

// newCounterexample minimizes the violating trace (for safety and liveness)
// and packages it.
func newCounterexample(u *Universe, opts Options, prop Property, detail string, trace []Action) *Counterexample {
	cex := &Counterexample{Property: prop, Detail: detail, Trace: trace}
	if prop == PropDeterminism {
		return cex
	}
	cex.Trace = minimizeTrace(u, opts, prop, trace)
	cex.Minimized = true
	// Re-derive the detail from the minimized trace: the shorter run may
	// trip the property with a different message.
	if detail, ok := reproduces(u, opts, prop, cex.Trace); ok {
		cex.Detail = detail
	}
	return cex
}

// reproduces replays the candidate leniently and reports whether it still
// violates the property, with the violation message.
func reproduces(u *Universe, opts Options, prop Property, trace []Action) (string, bool) {
	in, err := replayLenient(u, opts.Mutation, trace)
	if err != nil {
		// Any replay failure is a safety-class violation; for a liveness
		// counterexample a candidate that already breaks safety is not
		// the same bug.
		return err.Error(), prop == PropSafety
	}
	if prop == PropLiveness {
		if err := in.Drain(opts.DrainIterations); err != nil {
			return err.Error(), true
		}
	}
	return "", false
}

// minimizeTrace greedily deletes actions while the violation reproduces:
// repeatedly try removing each action (skip-semantics keep the rest
// meaningful) and restart from the shorter trace on success, until no
// single deletion preserves the failure. The result is 1-minimal — every
// remaining action is necessary.
func minimizeTrace(u *Universe, opts Options, prop Property, trace []Action) []Action {
	cur := trace
	for {
		shrunk := false
		for i := 0; i < len(cur); i++ {
			cand := make([]Action, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if _, ok := reproduces(u, opts, prop, cand); ok {
				cur = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// FaultPlan rebuilds the fault-plan DSL equivalent of the counterexample's
// environment events by replaying the trace and collecting the events with
// their recorded injection times. Traces without fault actions yield the
// empty string.
func (c *Counterexample) FaultPlan(u *Universe) string {
	in, _ := replayLenient(u, MutNone, c.Trace)
	if in == nil || len(in.Events()) == 0 {
		return ""
	}
	plan, err := fault.NewPlan(in.Events()...)
	if err != nil {
		return ""
	}
	return plan.String()
}

// Script renders the counterexample as a replayable artifact: commented
// header with the property and violation, the action script ParseScript
// accepts verbatim, and the fault-plan DSL for the environment events.
func (c *Counterexample) Script(u *Universe) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# property: %s\n", c.Property)
	fmt.Fprintf(&b, "# violation: %s\n", c.Detail)
	fmt.Fprintf(&b, "# minimized: %t\n", c.Minimized)
	if plan := c.FaultPlan(u); plan != "" {
		fmt.Fprintf(&b, "# fault plan: %s\n", plan)
	}
	b.WriteString(RenderTrace(u, c.Trace))
	return b.String()
}
