package mc

import (
	"fmt"
)

// Options bounds and tunes an exploration sweep.
type Options struct {
	// MaxDepth bounds trace length; 0 means 8.
	MaxDepth int
	// MaxStates bounds the number of distinct canonical states; when the
	// bound is hit the sweep stops expanding and reports Truncated. 0
	// means 200000.
	MaxStates int
	// Liveness enables the bounded fault-free drain at depth-bound leaves.
	Liveness bool
	// LivenessEvery samples every Nth leaf for the drain; 0 means 16.
	LivenessEvery int
	// DrainIterations bounds the drain; 0 means 24.
	DrainIterations int
	// DeterminismEvery re-executes every Nth newly discovered state's
	// trace and compares hashes; 0 means 512, negative disables.
	DeterminismEvery int
	// Mutation seeds a deliberate bug into the replay harness.
	Mutation Mutation
	// Progress, when non-nil, receives a callback every ProgressEvery
	// discovered states.
	Progress      func(states, transitions int)
	ProgressEvery int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 8
	}
	if o.MaxStates == 0 {
		o.MaxStates = 200000
	}
	if o.LivenessEvery == 0 {
		o.LivenessEvery = 16
	}
	if o.DrainIterations == 0 {
		o.DrainIterations = 24
	}
	if o.DeterminismEvery == 0 {
		o.DeterminismEvery = 512
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 10000
	}
	return o
}

// Result summarizes a sweep.
type Result struct {
	// States is the number of distinct canonical states discovered
	// (including the initial state); Transitions counts every explored
	// edge, including ones into already-known states.
	States, Transitions int
	// Deepest is the longest trace expanded.
	Deepest int
	// Truncated reports the MaxStates bound stopped the sweep before the
	// frontier emptied.
	Truncated bool
	// LivenessChecks and DeterminismChecks count the property probes run.
	LivenessChecks, DeterminismChecks int
	// Cex is the first property violation found, minimized; nil means the
	// sweep finished clean.
	Cex *Counterexample
}

// node is one frontier entry. The metadata mirrors exactly the state bits
// that determine which actions are enabled, so successor enumeration needs
// no replay of the parent.
type node struct {
	trace []Action
	depth int
	open  bool
	// enq marks a pending explicit tick evaluation (service universes).
	enq       bool
	submitted uint16
	failed    uint16
}

// enabled enumerates the feasible actions from the node's metadata, in a
// fixed order so exploration is deterministic.
func (u *Universe) enabled(n node) []Action {
	var out []Action
	for j := range u.Jobs {
		if n.submitted&(1<<j) == 0 {
			out = append(out, Action{Kind: ActSubmit, Arg: j})
		}
	}
	if u.Service {
		if n.open {
			out = append(out, Action{Kind: ActApply})
		} else {
			out = append(out, Action{Kind: ActEvaluate}, Action{Kind: ActCrash})
		}
		if !n.enq {
			out = append(out, Action{Kind: ActEnqueue})
		}
	} else if n.open {
		out = append(out, Action{Kind: ActCommit})
	} else {
		out = append(out, Action{Kind: ActPlan})
	}
	out = append(out, Action{Kind: ActTick})
	for i := range u.Nodes {
		if n.failed&(1<<i) != 0 {
			out = append(out, Action{Kind: ActRecover, Arg: i})
		} else {
			out = append(out, Action{Kind: ActFail, Arg: i},
				Action{Kind: ActRevoke, Arg: i})
		}
	}
	return out
}

// child derives the successor's metadata after action a.
func (n node) child(a Action, trace []Action) node {
	c := node{trace: trace, depth: n.depth + 1, open: n.open, enq: n.enq,
		submitted: n.submitted, failed: n.failed}
	switch a.Kind {
	case ActSubmit:
		c.submitted |= 1 << a.Arg
	case ActPlan:
		c.open = true
	case ActCommit:
		c.open = false
	case ActEnqueue:
		c.enq = true
	case ActEvaluate:
		c.open = true
		c.enq = false
	case ActApply:
		c.open = false
	case ActFail:
		c.failed |= 1 << a.Arg
	case ActRecover:
		c.failed &^= 1 << a.Arg
	}
	return c
}

// Explore runs the bounded breadth-first sweep over the universe, checking
// the safety set on every transition, sampling determinism on discovery and
// liveness at the depth bound. It returns the first violation as a
// minimized counterexample; error is reserved for harness failures (an
// invalid universe), never for property violations.
func Explore(u *Universe, opts Options) (*Result, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	res := &Result{}

	root, err := NewInstance(u, opts.Mutation, nil)
	if err != nil {
		return nil, err
	}
	seen := map[uint64]struct{}{root.Hash(): {}}
	res.States = 1
	frontier := []node{{}}
	leaves := 0

	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		if n.depth > res.Deepest {
			res.Deepest = n.depth
		}
		if n.depth >= opts.MaxDepth {
			if opts.Liveness {
				leaves++
				if leaves%opts.LivenessEvery == 0 {
					res.LivenessChecks++
					if cex := checkLiveness(u, opts, n.trace); cex != nil {
						res.Cex = cex
						return res, nil
					}
				}
			}
			continue
		}
		if res.Truncated {
			continue
		}
		for _, a := range u.enabled(n) {
			trace := make([]Action, len(n.trace)+1)
			copy(trace, n.trace)
			trace[len(n.trace)] = a
			in, err := Replay(u, opts.Mutation, trace, nil)
			res.Transitions++
			if err != nil {
				res.Cex = newCounterexample(u, opts, PropSafety, err.Error(), trace)
				return res, nil
			}
			h := in.Hash()
			if _, ok := seen[h]; ok {
				continue
			}
			seen[h] = struct{}{}
			res.States++
			if opts.Progress != nil && res.States%opts.ProgressEvery == 0 {
				opts.Progress(res.States, res.Transitions)
			}
			if opts.DeterminismEvery > 0 && res.States%opts.DeterminismEvery == 0 {
				res.DeterminismChecks++
				again, err := Replay(u, opts.Mutation, trace, nil)
				if err != nil {
					res.Cex = newCounterexample(u, opts, PropDeterminism,
						fmt.Sprintf("re-execution failed: %v", err), trace)
					return res, nil
				}
				if again.Hash() != h {
					res.Cex = newCounterexample(u, opts, PropDeterminism,
						fmt.Sprintf("re-execution hash %016x != %016x", again.Hash(), h), trace)
					return res, nil
				}
			}
			if res.States >= opts.MaxStates {
				res.Truncated = true
				break
			}
			frontier = append(frontier, n.child(a, trace))
		}
	}
	return res, nil
}

// checkLiveness replays the leaf trace and runs the bounded fault-free
// drain; a stuck queue or a violation during the drain is a counterexample.
func checkLiveness(u *Universe, opts Options, trace []Action) *Counterexample {
	in, err := Replay(u, opts.Mutation, trace, nil)
	if err != nil {
		// The trace was safe when explored; failing now is a
		// determinism problem, not liveness.
		return newCounterexample(u, opts, PropDeterminism, err.Error(), trace)
	}
	if err := in.Drain(opts.DrainIterations); err != nil {
		return newCounterexample(u, opts, PropLiveness, err.Error(), trace)
	}
	return nil
}
