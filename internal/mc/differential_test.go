package mc

import (
	"testing"
)

// enumerateCompatible walks the explorer's own transition alphabet
// (u.enabled / node.child, so the enumerated traces are exactly explorer
// traces) and collects every session-compatible trace up to the depth
// bound, capped at limit.
func enumerateCompatible(u *Universe, maxDepth, limit int) [][]Action {
	var out [][]Action
	var walk func(n node)
	walk = func(n node) {
		if len(out) >= limit || n.depth >= maxDepth {
			return
		}
		for _, a := range u.enabled(n) {
			trace := make([]Action, len(n.trace)+1)
			copy(trace, n.trace)
			trace[len(n.trace)] = a
			if a.Kind == ActTick {
				continue // never compatible, prune the whole subtree
			}
			if SessionCompatible(trace) {
				out = append(out, trace)
				if len(out) >= limit {
					return
				}
			}
			walk(n.child(a, trace))
		}
	}
	walk(node{})
	return out
}

// TestDifferentialSession replays every session-compatible explorer trace
// (submits up front, strict plan/commit pairs, faults between iterations)
// both through the model checker's instance and through a fault.Session
// driven by the recorded fault plan, and requires byte-identical
// transcripts. This pins the explorer to the production fault driver: the
// checker is exploring the real protocol, not a private re-implementation.
func TestDifferentialSession(t *testing.T) {
	u := Default()
	depth, limit := 7, 400
	if testing.Short() {
		depth, limit = 5, 60
	}
	traces := enumerateCompatible(u, depth, limit)
	if len(traces) < 30 {
		t.Fatalf("only %d compatible traces enumerated — generator broken", len(traces))
	}
	for _, trace := range traces {
		mcT, sessT, err := SessionTranscripts(u, trace)
		if err != nil {
			t.Fatalf("trace %q: %v", RenderTrace(u, trace), err)
		}
		if mcT != sessT {
			t.Fatalf("transcripts diverged for trace:\n%s--- explorer ---\n%s--- session ---\n%s",
				RenderTrace(u, trace), mcT, sessT)
		}
	}
	t.Logf("%d compatible traces, all transcripts byte-identical", len(traces))
}
