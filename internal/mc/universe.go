package mc

import (
	"fmt"

	"ecosched/internal/alloc"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// NodeSpec describes one node of a model-checking universe. Specs are
// templates: every replay builds a fresh pool from them, so instances never
// share mutable state.
type NodeSpec struct {
	Name        string
	Performance float64
	Price       sim.Money
	Domain      string
}

// JobSpec describes one job of the universe. Jobs are identified by index;
// each may be submitted at most once per trace.
type JobSpec struct {
	Name     string
	Nodes    int
	Time     sim.Duration
	MaxPrice sim.Money
}

// Universe is the finite world the explorer enumerates: the node pool, the
// job population, the scheduler configuration, and the one revocation span
// the revoke action uses. Everything is deterministic — no RNG, no local
// arrival load — so a trace fully determines the reached state.
type Universe struct {
	Nodes []NodeSpec
	Jobs  []JobSpec
	// Horizon and Step are the scheduler's look-ahead and clock advance.
	Horizon, Step sim.Duration
	// MaxPostponements bounds how long a job may ride the queue, which in
	// turn bounds the fault-free drain the liveness check runs.
	MaxPostponements int
	// Retry governs cancelled jobs; bounded attempts keep liveness finite.
	Retry *metasched.RetryPolicy
	// RevokeSpan is the interval every revoke action reclaims.
	RevokeSpan sim.Interval
	// Shards federates the universe's grid into this many domains
	// (metasched.Config.Shards); 0 or 1 keeps the single-domain world. The
	// schedules are byte-identical either way, so a sharded universe
	// explores the same state space while the auditor additionally checks
	// every shard store's coherence across fail/recover/revoke
	// interleavings that cross shard boundaries.
	Shards int
	// Service drives the universe through the continuous-service event loop
	// instead of batch iterations: the action alphabet swaps plan/commit
	// for enqueue/evaluate/apply, so the sweep exhaustively interleaves
	// environment events with the eval queue, the snapshot-bound planner,
	// and the re-validating serial applier. A round is the same step
	// sequence as a batch iteration, so a service universe reaches the same
	// schedules while additionally exploring the eval-queue state.
	Service bool
}

// Tiny is the smallest interesting universe: two nodes in two domains, two
// jobs. It exhausts completely at moderate depth, so tests can sweep it
// without bounds kicking in.
func Tiny() *Universe {
	return &Universe{
		Nodes: []NodeSpec{
			{Name: "n1", Performance: 1, Price: 2, Domain: "d0"},
			{Name: "n2", Performance: 1, Price: 3, Domain: "d1"},
		},
		Jobs: []JobSpec{
			{Name: "j1", Nodes: 1, Time: 40, MaxPrice: 10},
			{Name: "j2", Nodes: 1, Time: 60, MaxPrice: 10},
		},
		Horizon:          200,
		Step:             50,
		MaxPostponements: 3,
		Retry: &metasched.RetryPolicy{
			MaxAttempts: 1,
			BackoffBase: 50,
			BackoffMax:  50,
		},
		RevokeSpan: sim.Interval{Start: 40, End: 120},
	}
}

// Default is the CI universe: three nodes across two domains and three jobs
// including a two-node co-allocation, the smallest population where a
// failure can strand half of a parallel window.
func Default() *Universe {
	u := Tiny()
	u.Nodes = append(u.Nodes, NodeSpec{Name: "n3", Performance: 2, Price: 4, Domain: "d1"})
	u.Jobs = append(u.Jobs, JobSpec{Name: "j3", Nodes: 2, Time: 30, MaxPrice: 10})
	return u
}

// TwoShard is the Default universe federated into two shards: the canonical
// label hash splits {n1, n3} from {n2}, so the two-node co-allocation job j3
// must combine candidates across the shard boundary, and a failure or
// revocation on either side exercises one shard's store while the other's
// must stay untouched.
func TwoShard() *Universe {
	u := Default()
	u.Shards = 2
	return u
}

// Validate checks the universe is well-formed and small enough for the
// bitmask bookkeeping the explorer uses.
func (u *Universe) Validate() error {
	if len(u.Nodes) == 0 || len(u.Nodes) > 8 {
		return fmt.Errorf("mc: universe needs 1..8 nodes, has %d", len(u.Nodes))
	}
	if len(u.Jobs) == 0 || len(u.Jobs) > 8 {
		return fmt.Errorf("mc: universe needs 1..8 jobs, has %d", len(u.Jobs))
	}
	if u.Step <= 0 || u.Horizon <= 0 {
		return fmt.Errorf("mc: universe needs positive step and horizon")
	}
	if u.RevokeSpan.Empty() || !u.RevokeSpan.Valid() {
		return fmt.Errorf("mc: invalid revoke span %v", u.RevokeSpan)
	}
	if u.Shards < 0 {
		return fmt.Errorf("mc: negative shard count %d", u.Shards)
	}
	return nil
}

// pool builds a fresh node pool from the specs.
func (u *Universe) pool() (*resource.Pool, error) {
	nodes := make([]*resource.Node, len(u.Nodes))
	for i, spec := range u.Nodes {
		nodes[i] = &resource.Node{
			Name:        spec.Name,
			Performance: spec.Performance,
			Price:       spec.Price,
			Domain:      spec.Domain,
		}
	}
	return resource.NewPool(nodes)
}

// buildJob materializes a fresh job for submission; each replay gets its
// own copies because the retry ladder may mutate a job's request in place.
func (u *Universe) buildJob(i int) *job.Job {
	spec := u.Jobs[i]
	return &job.Job{Name: spec.Name, Request: job.ResourceRequest{
		Nodes:          spec.Nodes,
		Time:           spec.Time,
		MinPerformance: 1,
		MaxPrice:       spec.MaxPrice,
	}}
}

// config assembles the scheduler configuration all replays share.
func (u *Universe) config() metasched.Config {
	return metasched.Config{
		Algorithm:        alloc.ALP{},
		Policy:           metasched.MinimizeTime,
		Horizon:          u.Horizon,
		Step:             u.Step,
		MaxPostponements: u.MaxPostponements,
		Retry:            u.Retry,
		Shards:           u.Shards,
	}
}
