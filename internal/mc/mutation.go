package mc

import "fmt"

// Mutation seeds a deliberate protocol bug into the replay harness — never
// into the production packages — so the checker's ability to catch real
// violations is itself testable: explore with a mutation on and the sweep
// must end with a minimized counterexample instead of a clean pass.
type Mutation int

const (
	// MutNone runs the unmodified protocol.
	MutNone Mutation = iota
	// MutDoubleRefund refunds a node failure's cancellations twice: after
	// the scheduler handles the failure, the income the grid already
	// refunded is subtracted again, modelling a commit/cancel path that
	// forgets refunds are idempotent. Caught by the non-negative-income
	// invariant.
	MutDoubleRefund
	// MutResurrect re-books, on node recovery, every reservation the
	// node's failure had cancelled — the classic "node comes back and
	// replays its old ledger" bug. Caught by the resurrection and
	// event-adds-capacity invariants.
	MutResurrect
	// MutBlindApply makes the service applier skip re-validation: when the
	// pending plan is stale at ActApply, the plan's placements are written
	// to the grid as-is (bypassing every commit check) before the real apply
	// runs — the optimistic-concurrency bug the Plan epoch exists to
	// prevent. Caught by the double-booking, failed-node-reservation, and
	// vacant-store-coherence invariants. Service universes only.
	MutBlindApply
	// MutLossyCrash makes crash recovery silently drop the newest pending
	// evaluation from the restored service queue — the lost-journal-record
	// bug durability exists to prevent. Caught by the crash action's
	// hash-equality check. Service universes only.
	MutLossyCrash
)

// String names the mutation; also the CLI flag syntax.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutDoubleRefund:
		return "double-refund"
	case MutResurrect:
		return "resurrect"
	case MutBlindApply:
		return "blind-apply"
	case MutLossyCrash:
		return "lossy-crash"
	default:
		return fmt.Sprintf("mutation(%d)", int(m))
	}
}

// ParseMutation parses the CLI spelling of a mutation.
func ParseMutation(s string) (Mutation, error) {
	switch s {
	case "", "none":
		return MutNone, nil
	case "double-refund":
		return MutDoubleRefund, nil
	case "resurrect":
		return MutResurrect, nil
	case "blind-apply":
		return MutBlindApply, nil
	case "lossy-crash":
		return MutLossyCrash, nil
	default:
		return MutNone, fmt.Errorf("mc: unknown mutation %q (want none, double-refund, resurrect, blind-apply, lossy-crash)", s)
	}
}
