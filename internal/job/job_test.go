package job

import (
	"math"
	"strings"
	"testing"

	"ecosched/internal/sim"
)

func validRequest() ResourceRequest {
	return ResourceRequest{Nodes: 2, Time: 80, MinPerformance: 1, MaxPrice: 5}
}

func TestRequestValidate(t *testing.T) {
	if err := validRequest().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*ResourceRequest)
	}{
		{"zero nodes", func(r *ResourceRequest) { r.Nodes = 0 }},
		{"negative nodes", func(r *ResourceRequest) { r.Nodes = -1 }},
		{"zero time", func(r *ResourceRequest) { r.Time = 0 }},
		{"zero performance", func(r *ResourceRequest) { r.MinPerformance = 0 }},
		{"negative price", func(r *ResourceRequest) { r.MaxPrice = -1 }},
		{"NaN price", func(r *ResourceRequest) { r.MaxPrice = sim.Money(math.NaN()) }},
		{"negative rho", func(r *ResourceRequest) { r.BudgetFactor = -0.5 }},
	}
	for _, c := range cases {
		r := validRequest()
		c.mod(&r)
		if r.Validate() == nil {
			t.Errorf("%s: invalid request accepted", c.name)
		}
	}
}

func TestRequestBudget(t *testing.T) {
	r := validRequest() // C=5, t=80, N=2
	if got := r.Budget(); got != 800 {
		t.Errorf("Budget: got %v, want 800 (= C·t·N)", got)
	}
	r.BudgetFactor = 0.8
	if got := r.Budget(); math.Abs(float64(got-640)) > 1e-9 {
		t.Errorf("Budget with rho=0.8: got %v, want 640", got)
	}
}

func TestRequestRho(t *testing.T) {
	r := validRequest()
	if r.Rho() != 1.0 {
		t.Errorf("default rho: got %v, want 1", r.Rho())
	}
	r.BudgetFactor = 0.6
	if r.Rho() != 0.6 {
		t.Errorf("explicit rho: got %v", r.Rho())
	}
}

func TestRequestString(t *testing.T) {
	s := validRequest().String()
	for _, frag := range []string{"N=2", "t=80", "P>=1.00", "C<=5.00"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}

func TestJobValidate(t *testing.T) {
	j := &Job{Name: "job1", Request: validRequest()}
	if err := j.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	var nilJob *Job
	if nilJob.Validate() == nil {
		t.Error("nil job accepted")
	}
	noName := &Job{Request: validRequest()}
	if noName.Validate() == nil {
		t.Error("unnamed job accepted")
	}
	badReq := &Job{Name: "x", Request: ResourceRequest{}}
	if badReq.Validate() == nil {
		t.Error("job with invalid request accepted")
	}
}

func TestJobString(t *testing.T) {
	j := &Job{Name: "job1", Priority: 3, Request: validRequest()}
	s := j.String()
	if !strings.Contains(s, "job1") || !strings.Contains(s, "prio=3") {
		t.Errorf("String: got %q", s)
	}
}

func TestRequestDeadlineValidation(t *testing.T) {
	r := validRequest()
	r.Deadline = -1
	if r.Validate() == nil {
		t.Error("negative deadline accepted")
	}
	r.Deadline = 500
	if err := r.Validate(); err != nil {
		t.Errorf("positive deadline rejected: %v", err)
	}
	r.Deadline = 0
	if err := r.Validate(); err != nil {
		t.Errorf("zero (unconstrained) deadline rejected: %v", err)
	}
}
