package job

import (
	"strings"
	"testing"
)

func mkJob(name string, prio int) *Job {
	return &Job{Name: name, Priority: prio, Request: ResourceRequest{
		Nodes: 2, Time: 50, MinPerformance: 1, MaxPrice: 3,
	}}
}

func TestNewBatchSortsByPriority(t *testing.T) {
	b, err := NewBatch([]*Job{mkJob("c", 3), mkJob("a", 1), mkJob("b", 2)})
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len: got %d", b.Len())
	}
	want := []string{"a", "b", "c"}
	for i, name := range want {
		if b.At(i).Name != name {
			t.Errorf("position %d: got %s, want %s", i, b.At(i).Name, name)
		}
	}
}

func TestNewBatchStableOnTies(t *testing.T) {
	b := MustNewBatch([]*Job{mkJob("first", 1), mkJob("second", 1), mkJob("third", 1)})
	want := []string{"first", "second", "third"}
	for i, name := range want {
		if b.At(i).Name != name {
			t.Errorf("tie order broken at %d: got %s", i, b.At(i).Name)
		}
	}
}

func TestNewBatchRejectsDuplicatesAndInvalid(t *testing.T) {
	if _, err := NewBatch([]*Job{mkJob("a", 1), mkJob("a", 2)}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewBatch([]*Job{{Name: "bad"}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestMustNewBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewBatch should panic on invalid input")
		}
	}()
	MustNewBatch([]*Job{{Name: "bad"}})
}

func TestBatchByName(t *testing.T) {
	b := MustNewBatch([]*Job{mkJob("a", 1), mkJob("b", 2)})
	if b.ByName("b") == nil || b.ByName("zz") != nil {
		t.Error("ByName lookup wrong")
	}
}

func TestBatchDemandAggregates(t *testing.T) {
	j1, j2 := mkJob("a", 1), mkJob("b", 2)
	j1.Request.Time, j1.Request.Nodes = 100, 3
	j2.Request.Time, j2.Request.Nodes = 50, 2
	b := MustNewBatch([]*Job{j1, j2})
	if got := b.TotalEtalonTime(); got != 150 {
		t.Errorf("TotalEtalonTime: got %v", got)
	}
	if got := b.TotalSlotDemand(); got != 5 {
		t.Errorf("TotalSlotDemand: got %d", got)
	}
}

func TestBatchJobsAndString(t *testing.T) {
	b := MustNewBatch([]*Job{mkJob("a", 1)})
	if len(b.Jobs()) != 1 {
		t.Error("Jobs accessor wrong")
	}
	if !strings.Contains(b.String(), "a") {
		t.Errorf("String: got %q", b.String())
	}
}

func TestEmptyBatch(t *testing.T) {
	b, err := NewBatch(nil)
	if err != nil {
		t.Fatalf("empty batch should construct: %v", err)
	}
	if b.Len() != 0 || b.TotalEtalonTime() != 0 || b.TotalSlotDemand() != 0 {
		t.Error("empty batch aggregates should be zero")
	}
}
