package job

import (
	"fmt"
	"sort"
	"strings"

	"ecosched/internal/sim"
)

// Batch is the ordered set J = {j1, ..., jn} scheduled together in one
// iteration. Order is by priority (ties broken by insertion order), which is
// the order the alternative search visits jobs.
type Batch struct {
	jobs []*Job
}

// NewBatch builds a batch, validating every job and sorting by priority.
// Job names must be unique within a batch.
func NewBatch(jobs []*Job) (*Batch, error) {
	seen := map[string]bool{}
	b := &Batch{jobs: make([]*Job, 0, len(jobs))}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("job: duplicate job name %q in batch", j.Name)
		}
		seen[j.Name] = true
		b.jobs = append(b.jobs, j)
	}
	sort.SliceStable(b.jobs, func(i, k int) bool { return b.jobs[i].Priority < b.jobs[k].Priority })
	return b, nil
}

// MustNewBatch is NewBatch that panics on error; for tests and examples.
func MustNewBatch(jobs []*Job) *Batch {
	b, err := NewBatch(jobs)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the number of jobs.
func (b *Batch) Len() int { return len(b.jobs) }

// At returns the i-th job in priority order.
func (b *Batch) At(i int) *Job { return b.jobs[i] }

// Jobs returns the jobs in priority order; callers must not mutate the slice.
func (b *Batch) Jobs() []*Job { return b.jobs }

// ByName returns the named job, or nil.
func (b *Batch) ByName(name string) *Job {
	for _, j := range b.jobs {
		if j.Name == name {
			return j
		}
	}
	return nil
}

// TotalEtalonTime returns the sum of requested etalon wall times — a crude
// demand measure used by workload reports.
func (b *Batch) TotalEtalonTime() sim.Duration {
	var sum sim.Duration
	for _, j := range b.jobs {
		sum += j.Request.Time
	}
	return sum
}

// TotalSlotDemand returns the sum of requested node counts.
func (b *Batch) TotalSlotDemand() int {
	var sum int
	for _, j := range b.jobs {
		sum += j.Request.Nodes
	}
	return sum
}

// String lists the batch's jobs.
func (b *Batch) String() string {
	parts := make([]string, len(b.jobs))
	for i, j := range b.jobs {
		parts[i] = j.String()
	}
	return "Batch{" + strings.Join(parts, "; ") + "}"
}
