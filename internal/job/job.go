// Package job models the demand side of the economic scheduler: resource
// requests, parallel jobs, and job batches. A resource request is the
// user-facing contract from Section 3 of the paper: "N concurrent time-slots
// reserved for time span t with resource performance rate at least P and
// maximal resource price per time unit not higher than C".
package job

import (
	"fmt"

	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// ResourceRequest captures a job's requirements.
type ResourceRequest struct {
	// Nodes is N, the number of concurrent slots (tasks) to co-allocate.
	Nodes int
	// Time is t, the wall time needed on an etalon (performance 1) node.
	// On a node of performance P the task runs ceil(Time/P) ticks.
	Time sim.Duration
	// MinPerformance is P, the minimal acceptable node performance rate.
	MinPerformance float64
	// MaxPrice is C, the maximal acceptable price per time unit.
	// ALP enforces it per slot; AMP converts it into the job budget
	// S = BudgetFactor·C·t·N and enforces the budget on the whole window.
	MaxPrice sim.Money
	// BudgetFactor is the ρ coefficient from Section 6 (S = ρ·C·t·N).
	// Zero means 1.0 (the paper's default experiments).
	BudgetFactor float64
	// Needs are the non-performance node requirements (RAM, disk, OS,
	// tags) from the paper's resource-request description in Section 2.
	// The zero value matches every node.
	Needs resource.Requirements
	// Deadline, when positive, requires every task of the job to finish
	// at or before this time: window start + runtime ≤ Deadline on every
	// chosen slot. Zero means unconstrained (the paper's experiments).
	// Deadline-and-budget-constrained requests are the classic economic
	// scheduling contract (Buyya et al., the paper's ref [6]).
	Deadline sim.Time
}

// Rho returns the effective budget factor (1.0 when unset).
func (r ResourceRequest) Rho() float64 {
	if r.BudgetFactor <= 0 {
		return 1.0
	}
	return r.BudgetFactor
}

// Budget returns the job's maximal budget S = ρ·C·t·N used by AMP.
func (r ResourceRequest) Budget() sim.Money {
	return sim.Money(r.Rho()) * r.MaxPrice * sim.Money(r.Time) * sim.Money(r.Nodes)
}

// Validate reports an error when the request is unsatisfiable by
// construction.
func (r ResourceRequest) Validate() error {
	if r.Nodes <= 0 {
		return fmt.Errorf("job: request needs %d nodes, want >= 1", r.Nodes)
	}
	if r.Time <= 0 {
		return fmt.Errorf("job: request has non-positive time span %v", r.Time)
	}
	if r.MinPerformance <= 0 {
		return fmt.Errorf("job: request has non-positive minimal performance %v", r.MinPerformance)
	}
	if r.MaxPrice < 0 || !r.MaxPrice.IsFinite() {
		return fmt.Errorf("job: request has invalid max price %v", r.MaxPrice)
	}
	if r.BudgetFactor < 0 {
		return fmt.Errorf("job: request has negative budget factor %v", r.BudgetFactor)
	}
	if err := r.Needs.Validate(); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if r.Deadline < 0 {
		return fmt.Errorf("job: request has negative deadline %v", r.Deadline)
	}
	return nil
}

// String renders the request compactly.
func (r ResourceRequest) String() string {
	return fmt.Sprintf("N=%d t=%v P>=%.2f C<=%v rho=%.2f",
		r.Nodes, r.Time, r.MinPerformance, r.MaxPrice, r.Rho())
}

// Job is one independent parallel application in the batch.
type Job struct {
	// Name identifies the job in charts and experiment output.
	Name string
	// Request is the job's resource request.
	Request ResourceRequest
	// Priority orders jobs within a batch; lower values are scheduled
	// first (the Section 4 example gives Job 1 the highest priority).
	Priority int
}

// Validate checks the job.
func (j *Job) Validate() error {
	if j == nil {
		return fmt.Errorf("job: nil job")
	}
	if j.Name == "" {
		return fmt.Errorf("job: job with empty name")
	}
	if err := j.Request.Validate(); err != nil {
		return fmt.Errorf("job %s: %w", j.Name, err)
	}
	return nil
}

// String renders the job with its request.
func (j *Job) String() string {
	return fmt.Sprintf("%s{%v, prio=%d}", j.Name, j.Request, j.Priority)
}
