package durable_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecosched/internal/codec"
	"ecosched/internal/durable"
	"ecosched/internal/job"
	"ecosched/internal/metrics"
	"ecosched/internal/sim"
)

// miniSession drives a short durable session against the fuzz scenario:
// three submits, a tick, a node failure, a tick (checkpoint lands here with
// cadence 2), a recovery, and a final tick — eight journaled transitions.
func miniSession(t *testing.T, opts durable.Options) *durable.Service {
	t.Helper()
	svc, err := fuzzFactory()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.New(svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"j1", "j2", "j3"} {
		j := &job.Job{
			Name: name, Priority: i + 1,
			Request: job.ResourceRequest{Nodes: 1, Time: sim.Duration(40 + 10*i), MinPerformance: 1, MaxPrice: 6},
		}
		if err := ds.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.HandleNodeFailure("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := ds.HandleNodeRecovery("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestJournalMetrics pins every metasched/durable/* instrument over one write
// session and one recovery: append and byte totals on the write side,
// checkpoint count at the configured cadence, and replay, replayed-record,
// checkpoint-recovery, and torn-tail counters on the recover side.
func TestJournalMetrics(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{
		JournalPath:     filepath.Join(dir, "m.journal"),
		CheckpointPath:  filepath.Join(dir, "m.ckpt"),
		CheckpointEvery: 2,
	}
	writeReg := metrics.New()
	wo := opts
	wo.Metrics = writeReg
	ds := miniSession(t, wo)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	snap := writeReg.Snapshot()
	if got := snap.Counter("metasched/durable/records_appended_total"); got != 8 {
		t.Fatalf("records_appended_total = %d, want 8", got)
	}
	wantBytes := info.Size() - int64(len(codec.JournalMagic))
	if got := snap.Counter("metasched/durable/journal_bytes_total"); got != wantBytes {
		t.Fatalf("journal_bytes_total = %d, want %d (file size minus magic)", got, wantBytes)
	}
	// Eight records, three of them rounds: the cadence-2 checkpoint fires
	// once, after the second round.
	if got := snap.Counter("metasched/durable/checkpoints_written_total"); got != 1 {
		t.Fatalf("checkpoints_written_total = %d, want 1", got)
	}

	// Tear the tail, then recover with a fresh registry.
	f, err := os.OpenFile(opts.JournalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recReg := metrics.New()
	ro := opts
	ro.Metrics = recReg
	rds, rep, err := durable.Recover(ro, fuzzFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer rds.Close()
	if !rep.CheckpointUsed {
		t.Fatal("recovery ignored the checkpoint")
	}
	// The checkpoint covers the first six records (through the second round);
	// the trailing recovery + tick replay.
	if rep.RecordsReplayed != 2 {
		t.Fatalf("RecordsReplayed = %d, want 2", rep.RecordsReplayed)
	}
	rsnap := recReg.Snapshot()
	for name, want := range map[string]int64{
		"metasched/durable/replays_total":                    1,
		"metasched/durable/records_replayed_total":           2,
		"metasched/durable/recoveries_from_checkpoint_total": 1,
		"metasched/durable/torn_tail_bytes_dropped_total":    4,
	} {
		if got := rsnap.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if rep.TornBytesDropped != 4 {
		t.Fatalf("TornBytesDropped = %d, want 4", rep.TornBytesDropped)
	}
}

// TestNewRejectsExistingHistory: a journal that already holds records is
// history the fresh service does not have — New must refuse it and point at
// Recover instead of silently appending a second timeline.
func TestNewRejectsExistingHistory(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{JournalPath: filepath.Join(dir, "h.journal")}
	ds := miniSession(t, opts)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	svc, err := fuzzFactory()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.New(svc, opts); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("New over a populated journal: err = %v, want a use-Recover rejection", err)
	}
}

// TestOptionsValidation covers the construction error paths: a missing
// journal path, a checkpoint cadence without a checkpoint file, a negative
// cadence, a journal path holding a non-journal file, checkpointing without a
// configured path, and a nil service/factory.
func TestOptionsValidation(t *testing.T) {
	svc, err := fuzzFactory()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.New(svc, durable.Options{}); err == nil {
		t.Fatal("New accepted empty options")
	}
	if _, err := durable.New(svc, durable.Options{JournalPath: "x", CheckpointEvery: 2}); err == nil {
		t.Fatal("New accepted a checkpoint cadence without a checkpoint path")
	}
	if _, err := durable.New(svc, durable.Options{JournalPath: "x", CheckpointEvery: -1}); err == nil {
		t.Fatal("New accepted a negative checkpoint cadence")
	}
	if _, err := durable.New(nil, durable.Options{JournalPath: "x"}); err == nil {
		t.Fatal("New accepted a nil service")
	}

	dir := t.TempDir()
	notJournal := filepath.Join(dir, "not.journal")
	if err := os.WriteFile(notJournal, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.New(svc, durable.Options{JournalPath: notJournal}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("New over a non-journal file: err = %v, want bad-magic rejection", err)
	}

	ds, err := durable.New(svc, durable.Options{JournalPath: filepath.Join(dir, "j.journal")})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if err := ds.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded without a checkpoint path")
	}

	if _, _, err := durable.Recover(durable.Options{JournalPath: filepath.Join(dir, "r.journal")}, nil); err == nil {
		t.Fatal("Recover accepted a nil factory")
	}
}

// TestRecoverRejectsVersionSkew: a checkpoint from a future format version is
// a hard error — unlike a torn checkpoint, it cannot be absorbed by replaying
// the journal, because the journal may use the same future format.
func TestRecoverRejectsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{
		JournalPath:     filepath.Join(dir, "v.journal"),
		CheckpointPath:  filepath.Join(dir, "v.ckpt"),
		CheckpointEvery: 2,
	}
	ds := miniSession(t, opts)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the checkpoint with a bumped version inside a valid frame.
	skew := append([]byte(codec.CheckpointMagic), codec.Frame([]byte(`{"v":99}`))...)
	if err := os.WriteFile(opts.CheckpointPath, skew, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := durable.Recover(opts, fuzzFactory); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("Recover with a version-skewed checkpoint: err = %v, want a version error", err)
	}
	// A torn checkpoint, by contrast, falls back to full replay.
	if err := os.WriteFile(opts.CheckpointPath, []byte(codec.CheckpointMagic+"half a fra"), 0o644); err != nil {
		t.Fatal(err)
	}
	rds, rep, err := durable.Recover(opts, fuzzFactory)
	if err != nil {
		t.Fatalf("Recover with a torn checkpoint: %v", err)
	}
	defer rds.Close()
	if rep.CheckpointUsed {
		t.Fatal("recovery claims it used a torn checkpoint")
	}
	if rep.RecordsReplayed != rep.RecordsScanned {
		t.Fatalf("full replay replayed %d of %d records", rep.RecordsReplayed, rep.RecordsScanned)
	}
}
