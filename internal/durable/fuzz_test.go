package durable_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/codec"
	"ecosched/internal/durable"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// fuzzFactory rebuilds the tiny deterministic scenario every fuzz execution
// recovers into: three nodes, seeded local load, a short retry ladder. Small
// on purpose — the fuzzer runs it twice per input.
func fuzzFactory() (*metasched.Service, error) {
	pool, err := resource.NewPool([]*resource.Node{
		{Name: "n1", Performance: 1, Price: 1, Domain: "d0"},
		{Name: "n2", Performance: 2, Price: 1.5, Domain: "d1"},
		{Name: "n3", Performance: 1.5, Price: 2},
	})
	if err != nil {
		return nil, err
	}
	grid, err := gridsim.New(pool)
	if err != nil {
		return nil, err
	}
	if err := grid.Populate(gridsim.LocalLoad{MeanGap: 120, DurMin: 20, DurMax: 40}, 0, 1000, sim.NewRNG(42)); err != nil {
		return nil, err
	}
	sched, err := metasched.New(metasched.Config{
		Algorithm: alloc.AMP{}, Policy: metasched.MinimizeTime,
		Horizon: 600, Step: 60, MaxBatch: 3, MaxPostponements: 2,
		Retry: &metasched.RetryPolicy{
			MaxAttempts: 2, BackoffBase: 30, BackoffFactor: 2, BackoffMax: 120,
			PriceRelaxFactor: 1.3, MaxRelaxations: 1,
		},
	}, grid)
	if err != nil {
		return nil, err
	}
	return metasched.NewService(sched, metasched.ServiceConfig{})
}

// seedJournal plays a genuine durable session — submits, a failure, a
// recovery, ticks — and returns the journal bytes it wrote.
func seedJournal(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.journal")
	svc, err := fuzzFactory()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.New(svc, durable.Options{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j := &job.Job{
			Name: fmt.Sprintf("j%d", i+1), Priority: i + 1,
			Request: job.ResourceRequest{Nodes: 1, Time: sim.Duration(40 + 10*i), MinPerformance: 1, MaxPrice: 6},
		}
		if err := ds.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.HandleNodeFailure("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := ds.HandleNodeRecovery("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// seedInputs derives the pinned corpus from one genuine journal: intact,
// torn mid-frame, bit-flipped, with the last record duplicated, with the
// first two records swapped, with a version-skewed record appended, and the
// degenerate non-journal shapes.
func seedInputs(t testing.TB) map[string][]byte {
	t.Helper()
	raw := seedJournal(t)
	payloads, ends, _ := codec.ScanFrames(raw[len(codec.JournalMagic):])
	if len(payloads) < 3 {
		t.Fatalf("seed journal holds only %d records", len(payloads))
	}
	frame := func(i int) []byte {
		start := len(codec.JournalMagic)
		if i > 0 {
			start += ends[i-1]
		}
		return raw[start : len(codec.JournalMagic)+ends[i]]
	}
	flipped := append([]byte{}, raw...)
	flipped[len(raw)/2] ^= 0x40
	duplicated := append(append([]byte{}, raw...), frame(len(payloads)-1)...)
	reordered := append([]byte{}, raw[:len(codec.JournalMagic)]...)
	reordered = append(reordered, frame(1)...)
	reordered = append(reordered, frame(0)...)
	for i := 2; i < len(payloads); i++ {
		reordered = append(reordered, frame(i)...)
	}
	skew := append(append([]byte{}, raw...),
		codec.Frame([]byte(`{"v":99,"seq":999,"kind":"submit","now":0}`))...)
	return map[string][]byte{
		"intact":        raw,
		"torn-tail":     raw[:len(raw)-3],
		"bit-flip":      flipped,
		"duplicated":    duplicated,
		"reordered":     reordered,
		"version-skew":  skew,
		"empty":         {},
		"magic-only":    []byte(codec.JournalMagic),
		"wrong-magic":   []byte("NOTAJRNL" + "junk"),
		"short-garbage": []byte{0x01, 0x02, 0x03},
	}
}

// FuzzJournal feeds arbitrary bytes to the full recovery pipeline as a
// journal file. Whatever the damage — truncation, bit flips, duplicated or
// reordered records, version skew — recovery must either fail cleanly or
// succeed into a coherent state: the audit invariants and the
// recovery-coherence check hold, and recovering the same (tail-truncated)
// file again reproduces the identical state hash and record count. A
// corrupt-state load — success with incoherent or unstable state — is the
// one outcome the journal format must make impossible.
func FuzzJournal(f *testing.F) {
	for _, data := range seedInputs(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		opts := durable.Options{JournalPath: path}
		ds, rep, err := durable.Recover(opts, fuzzFactory)
		if err != nil {
			return // clean rejection: nothing was loaded
		}
		a := fault.NewAudit(ds.Scheduler())
		if err := a.Check(); err != nil {
			t.Fatalf("recovery accepted a journal but loaded an invariant-breaking state: %v", err)
		}
		if err := a.CheckRecoveryCoherence(rep.AppliedLive); err != nil {
			t.Fatalf("recovery accepted a journal but state is incoherent: %v", err)
		}
		h := durable.StateHash(ds.Unwrap())
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		// The first recovery truncated any torn tail, so a second one must be
		// an exact fixed point.
		ds2, rep2, err := durable.Recover(opts, fuzzFactory)
		if err != nil {
			t.Fatalf("re-recovery failed after a clean recovery: %v", err)
		}
		defer ds2.Close()
		if got := durable.StateHash(ds2.Unwrap()); got != h {
			t.Fatalf("re-recovery hash %x differs from first recovery %x", got, h)
		}
		if rep2.RecordsScanned != rep.RecordsScanned {
			t.Fatalf("re-recovery scanned %d records, first recovery %d", rep2.RecordsScanned, rep.RecordsScanned)
		}
		if rep2.TornBytesDropped != 0 {
			t.Fatalf("re-recovery still dropped %d torn bytes", rep2.TornBytesDropped)
		}
	})
}

// TestWriteFuzzCorpus pins the seed corpus under testdata so CI's fuzz smoke
// replays it without regenerating. Run with WRITE_FUZZ_CORPUS=1 after
// changing the journal format or the seed session.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/FuzzJournal")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seedInputs(t) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
