package durable_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/durable"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/metrics"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// benchDurableSession plays one complete seeded service session on the
// metasched benchmark grid — 1000 nodes whose local load publishes on the
// order of 100k vacant slots — through the durable wrapper when opts is
// non-nil and through the bare service otherwise. It returns the size of the
// vacant list at the final horizon so the benchmark reports the scale it ran
// at.
func benchDurableSession(b *testing.B, seed uint64, opts *durable.Options, reg *metrics.Registry) int {
	b.Helper()
	rng := sim.NewRNG(seed)
	pricing := resource.PaperPricing()
	nodes := make([]*resource.Node, 0, 1000)
	for i := 0; i < 1000; i++ {
		perf := rng.FloatBetween(1, 3)
		nodes = append(nodes, &resource.Node{
			Name:        fmt.Sprintf("n%d", i+1),
			Performance: perf,
			Price:       pricing.Sample(rng, perf),
		})
	}
	pool, err := resource.NewPool(nodes)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := gridsim.New(pool)
	if err != nil {
		b.Fatal(err)
	}
	if err := grid.Populate(gridsim.LocalLoad{MeanGap: 30, DurMin: 20, DurMax: 40}, 0, 7500, rng.Split()); err != nil {
		b.Fatal(err)
	}
	cfg := metasched.Config{
		Algorithm:        alloc.AMP{},
		Policy:           metasched.MinimizeTime,
		Horizon:          6000,
		Step:             150,
		MaxBatch:         4,
		MaxPostponements: 3,
		Parallelism:      1,
	}
	cfg.Search.MaxAlternativesPerJob = 10
	sched, err := metasched.New(cfg, grid)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := metasched.NewService(sched, metasched.ServiceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	submit := svc.Submit
	tick := svc.Tick
	if opts != nil {
		o := *opts
		o.Metrics = reg
		ds, err := durable.New(svc, o)
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		submit = ds.Submit
		tick = ds.Tick
	}
	for i := 0; i < 8; i++ {
		j := &job.Job{
			Name:     fmt.Sprintf("job%d", i+1),
			Priority: i + 1,
			Request: job.ResourceRequest{
				Nodes:          rng.IntBetween(1, 3),
				Time:           sim.Duration(rng.IntBetween(30, 90)),
				MinPerformance: rng.FloatBetween(1, 1.8),
				MaxPrice:       pricing.BasePrice(1.5) * sim.Money(rng.FloatBetween(1.0, 1.4)),
			},
		}
		if err := submit(j); err != nil {
			b.Fatal(err)
		}
	}
	// Exactly three rounds — an empty-queue tick is still a bare periodic
	// round — so every mode journals the same 8+3 transitions.
	for it := 0; it < 3; it++ {
		if _, err := tick(); err != nil {
			b.Fatalf("seed %d iteration %d: %v", seed, it, err)
		}
	}
	vacant, err := grid.VacantSlots(grid.Now() + sim.Time(cfg.Horizon))
	if err != nil {
		b.Fatal(err)
	}
	return vacant.Len()
}

// BenchmarkDurableSession prices the durability tax at scale: the identical
// 1000-node / ~100k-slot service session run bare ("off"), with the
// write-ahead journal ("journal"), and with the journal plus a checkpoint
// every other round ("journal+ckpt"). The journaled sub-benchmarks also
// enforce the write-path contract — every transition appended exactly one
// record (8 submits + 3 ticks = 11) and the checkpoint cadence fired. The
// dominant cost of a session is planning, so the journal's per-transition
// JSON frame should price in the low percent range; CI publishes the results
// as the BENCH_durable.json artifact.
func BenchmarkDurableSession(b *testing.B) {
	for _, mode := range []struct {
		name            string
		journal         bool
		checkpointEvery int
	}{
		{"off", false, 0},
		{"journal", true, 0},
		{"journal+ckpt", true, 2},
	} {
		b.Run(mode.name, func(b *testing.B) {
			slots := 0
			for i := 0; i < b.N; i++ {
				var opts *durable.Options
				if mode.journal {
					dir := b.TempDir()
					opts = &durable.Options{JournalPath: filepath.Join(dir, "bench.journal")}
					if mode.checkpointEvery > 0 {
						opts.CheckpointPath = filepath.Join(dir, "bench.ckpt")
						opts.CheckpointEvery = mode.checkpointEvery
					}
				}
				reg := metrics.New()
				slots = benchDurableSession(b, uint64(i%10+1), opts, reg)
				if !mode.journal {
					continue
				}
				snap := reg.Snapshot()
				if n := snap.Counter("metasched/durable/records_appended_total"); n != 11 {
					b.Fatalf("records_appended_total = %d, want 11 (8 submits + 3 rounds)", n)
				}
				if mode.checkpointEvery > 0 {
					if n := snap.Counter("metasched/durable/checkpoints_written_total"); n == 0 {
						b.Fatal("checkpoint cadence never fired")
					}
				}
			}
			b.ReportMetric(float64(slots), "slots/op")
		})
	}
}
