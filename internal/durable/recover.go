package durable

import (
	"errors"
	"fmt"
	"os"
	"reflect"

	"ecosched/internal/codec"
	"ecosched/internal/dp"
	"ecosched/internal/metasched"
)

// Factory rebuilds the pristine, pre-journal service: the same pool, grid,
// scheduler configuration, and seeds the original session started from.
// Recovery = factory() + checkpoint restore (if valid) + journal replay;
// because configuration comes from code and the journal carries every
// transition, the recovered state is byte-identical to the crashed one.
type Factory func() (*metasched.Service, error)

// RecoveryReport describes what a recovery did.
type RecoveryReport struct {
	// CheckpointUsed reports whether a valid checkpoint cut the replay.
	CheckpointUsed bool
	// RecordsScanned counts the intact records found in the journal;
	// RecordsReplayed counts how many were replayed (all of them on a full
	// replay, the post-checkpoint suffix otherwise).
	RecordsScanned  int
	RecordsReplayed int
	// TornBytesDropped is the size of the torn tail a crash left behind.
	TornBytesDropped int64
	// Replayed counts per record kind.
	Submits, Fails, Recovers, Revokes, Rounds int
	// AppliedLive is the journal-derived applied-plan ledger after replay,
	// sorted — already cross-checked against the scheduler's placed set.
	AppliedLive []string
}

// Recover rebuilds a durable service from its journal: construct the
// pristine service via the factory, restore the latest valid checkpoint if
// one aligns with the journal, replay the remaining records through the real
// service handlers (cross-checking each record's journaled outcome), and
// verify recovery coherence — the scheduler's placed set must equal the
// journal's applied-plan ledger, so no applied plan is lost and no unlogged
// booking resurrected. The returned service appends where the journal left
// off.
//
// A torn journal tail and a torn or missing checkpoint are absorbed
// (truncate, fall back to full replay); a record that fails to decode,
// replays differently than journaled, or comes from an incompatible format
// version is an error — the journal and the code disagree about history, and
// loading approximately would corrupt state.
func Recover(opts Options, factory Factory) (*Service, *RecoveryReport, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if factory == nil {
		return nil, nil, fmt.Errorf("durable: nil factory")
	}
	svc, err := factory()
	if err != nil {
		return nil, nil, fmt.Errorf("durable: factory: %w", err)
	}
	if svc == nil {
		return nil, nil, fmt.Errorf("durable: factory returned nil service")
	}
	m := newDurableMetrics(opts.Metrics)
	j, payloads, torn, err := OpenJournal(opts.JournalPath, opts.Sync, m)
	if err != nil {
		return nil, nil, err
	}
	ds, rep, err := recoverFrom(svc, j, payloads, torn, opts, m)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	return ds, rep, nil
}

// recoverFrom decodes, restores, and replays against an open journal.
func recoverFrom(svc *metasched.Service, j *Journal, payloads [][]byte, torn int64, opts Options, m *durableMetrics) (*Service, *RecoveryReport, error) {
	pool := svc.Scheduler().Grid().Pool()
	records := make([]*codec.Record, len(payloads))
	for i, p := range payloads {
		rec, err := codec.DecodeRecord(p, pool)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: record %d: %w", i+1, err)
		}
		if rec.Seq != uint64(i+1) {
			return nil, nil, fmt.Errorf("durable: record %d carries sequence %d (duplicated or reordered journal)", i+1, rec.Seq)
		}
		records[i] = rec
	}
	rep := &RecoveryReport{RecordsScanned: len(records), TornBytesDropped: torn}
	ds := &Service{svc: svc, j: j, opts: opts, m: m, appliedLive: map[string]bool{}}

	// Frame boundaries in file coordinates: boundary[k] is the journal size
	// after k records. A checkpoint is usable only when its JournalOffset
	// lands exactly on one of these — anything else means the checkpoint and
	// the journal disagree and full replay is the safe path.
	boundaries := make([]int64, len(records)+1)
	off := int64(len(codec.JournalMagic))
	boundaries[0] = off
	for i, p := range payloads {
		off += int64(len(p)) + codec.FrameOverhead
		boundaries[i+1] = off
	}
	replayFrom := 0
	if opts.CheckpointPath != "" {
		cp, err := loadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, nil, err
		}
		if cp != nil {
			at := -1
			for k, b := range boundaries {
				if b == cp.JournalOffset {
					at = k
					break
				}
			}
			if at >= 0 && cp.Seq == uint64(at) {
				if err := restoreCheckpoint(ds, cp); err != nil {
					return nil, nil, fmt.Errorf("durable: checkpoint restore: %w", err)
				}
				replayFrom = at
				rep.CheckpointUsed = true
			}
		}
	}
	m.replayStarted(rep.CheckpointUsed)

	for i := replayFrom; i < len(records); i++ {
		if err := ds.replayRecord(records[i], rep); err != nil {
			return nil, nil, fmt.Errorf("durable: replay record %d (%s): %w", i+1, records[i].Kind, err)
		}
		rep.RecordsReplayed++
		m.recordReplayed()
	}
	j.resume(uint64(len(records)))

	rep.AppliedLive = ds.AppliedLive()
	placed := svc.Scheduler().PlacedJobs()
	if !equalStrings(rep.AppliedLive, placed) {
		return nil, nil, fmt.Errorf("durable: recovery incoherent: journal applied-plan ledger %v, scheduler placed set %v",
			rep.AppliedLive, placed)
	}
	return ds, rep, nil
}

// loadCheckpoint reads and decodes the checkpoint file. A missing or torn
// checkpoint returns nil (fall back to full replay); version skew and I/O
// errors are hard failures.
func loadCheckpoint(path string) (*codec.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: read checkpoint: %w", err)
	}
	cp, err := codec.DecodeCheckpoint(data)
	if err != nil {
		var skew *codec.VersionSkewError
		if errors.As(err, &skew) {
			return nil, fmt.Errorf("durable: checkpoint %s: %w", path, err)
		}
		if errors.Is(err, codec.ErrTorn) {
			return nil, nil
		}
		// Structurally intact but semantically invalid (e.g. malformed
		// JSON inside a valid frame): treat as torn — the journal can
		// always reproduce the state.
		return nil, nil
	}
	return cp, nil
}

// restoreCheckpoint loads a checkpoint's three state layers into the
// service, seeding the applied-live ledger and round counter from it.
func restoreCheckpoint(ds *Service, cp *codec.Checkpoint) error {
	sched := ds.svc.Scheduler()
	if err := sched.Grid().RestoreState(cp.Grid); err != nil {
		return err
	}
	if err := sched.RestoreState(cp.Sched); err != nil {
		return err
	}
	if err := ds.svc.RestoreState(cp.Service); err != nil {
		return err
	}
	ds.rounds = cp.Rounds
	ds.appliedLive = map[string]bool{}
	for _, name := range sched.PlacedJobs() {
		ds.appliedLive[name] = true
	}
	return nil
}

// replayRecord re-executes one journaled transition through the real service
// handlers and cross-checks its journaled outcome.
func (ds *Service) replayRecord(rec *codec.Record, rep *RecoveryReport) error {
	switch rec.Kind {
	case codec.RecordSubmit:
		rep.Submits++
		return ds.svc.Submit(rec.Job)
	case codec.RecordFail:
		rep.Fails++
		before := ds.svc.Scheduler().DroppedJobs()
		requeued, err := ds.svc.HandleNodeFailure(rec.Node)
		if err != nil {
			return err
		}
		return ds.checkOutcome(rec, requeued, newlyDropped(before, ds.svc.Scheduler().DroppedJobs()))
	case codec.RecordRecover:
		rep.Recovers++
		return ds.svc.HandleNodeRecovery(rec.Node)
	case codec.RecordRevoke:
		rep.Revokes++
		before := ds.svc.Scheduler().DroppedJobs()
		requeued, err := ds.svc.HandleRevocation(rec.Node, rec.Span)
		if err != nil {
			return err
		}
		return ds.checkOutcome(rec, requeued, newlyDropped(before, ds.svc.Scheduler().DroppedJobs()))
	case codec.RecordRound:
		rep.Rounds++
		return ds.replayRound(rec.Round)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
}

// checkOutcome verifies a fail/revoke record's journaled outcome against the
// replayed one and updates the applied-live ledger.
func (ds *Service) checkOutcome(rec *codec.Record, requeued, dropped []string) error {
	if !equalStrings(rec.Requeued, requeued) {
		return fmt.Errorf("journaled requeues %v, replay produced %v", rec.Requeued, requeued)
	}
	if !equalStrings(rec.Dropped, dropped) {
		return fmt.Errorf("journaled drops %v, replay produced %v", rec.Dropped, dropped)
	}
	ds.forgetApplied(requeued, dropped)
	return nil
}

// replayRound re-runs one evaluation round, installing the journaled plan in
// place of the search (Plan's grid reads are pure, so skipping it cannot
// change state) and driving the normal serial applier, which re-validates
// every window via the grid's commit.
func (ds *Service) replayRound(rr *codec.RoundRecord) error {
	if rr.Tick {
		ds.svc.EnqueueTick()
	}
	r, err := ds.svc.BeginRound()
	if err != nil {
		return err
	}
	var plan *metasched.Plan
	if rr.Planned {
		plan = &metasched.Plan{
			Iteration: rr.Iteration,
			Epoch:     rr.Epoch,
			TotalTime: rr.TotalTime,
			TotalCost: rr.TotalCost,
		}
		for _, cr := range rr.Choices {
			jb := ds.svc.Scheduler().QueuedJob(cr.Job)
			if jb == nil {
				return fmt.Errorf("planned job %q is not in the recovered queue", cr.Job)
			}
			plan.Choices = append(plan.Choices, dp.Choice{Job: jb, Window: cr.Window})
		}
	}
	if err := r.Iteration().InstallPlan(plan); err != nil {
		return err
	}
	if err := r.Apply(); err != nil {
		return err
	}
	if got := r.Iteration().StaleJobs(); !equalStrings(rr.Stale, got) {
		return fmt.Errorf("journaled stale windows %v, replay produced %v", rr.Stale, got)
	}
	rep, err := r.Finish()
	if err != nil {
		return err
	}
	if rep.Iteration != rr.Iteration {
		return fmt.Errorf("journaled iteration %d, replay ran %d", rr.Iteration, rep.Iteration)
	}
	var placed []string
	for _, p := range rep.Placed {
		placed = append(placed, p.Job.Name)
	}
	if !equalStrings(rr.Placed, placed) {
		return fmt.Errorf("journaled placements %v, replay produced %v", rr.Placed, placed)
	}
	for _, name := range placed {
		ds.appliedLive[name] = true
	}
	ds.rounds++
	return nil
}

// equalStrings compares two string slices, nil and empty alike.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
