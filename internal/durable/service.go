package durable

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"

	"ecosched/internal/codec"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/metrics"
	"ecosched/internal/sim"
)

// Options parameterizes the durable wrapper.
type Options struct {
	// JournalPath is the write-ahead journal file. Required.
	JournalPath string
	// CheckpointPath is the checkpoint file; empty disables checkpoints and
	// recovery replays the full journal.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint after every N completed rounds;
	// 0 disables automatic checkpoints (Checkpoint can still be called).
	CheckpointEvery int
	// Sync fsyncs the journal after every append. Off by default: the
	// crash-injection harness models crashes by truncating bytes, which is
	// exactly the guarantee the frame CRCs defend, and real deployments can
	// opt in for power-loss safety.
	Sync bool
	// Metrics receives the metasched/durable/* instruments; nil disables
	// observability with zero allocation on the hot path.
	Metrics *metrics.Registry
}

func (o Options) validate() error {
	if o.JournalPath == "" {
		return fmt.Errorf("durable: no journal path")
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("durable: negative checkpoint cadence %d", o.CheckpointEvery)
	}
	if o.CheckpointEvery > 0 && o.CheckpointPath == "" {
		return fmt.Errorf("durable: checkpoint cadence %d without a checkpoint path", o.CheckpointEvery)
	}
	return nil
}

// Service wraps a metasched.Service so every externally visible transition
// is journaled after it succeeds. It exposes the same driving surface as the
// wrapped service (fault.ServiceDriver), so chaos sessions and the CLI run
// unmodified against it.
type Service struct {
	svc  *metasched.Service
	j    *Journal
	opts Options
	m    *durableMetrics
	// rounds counts completed rounds (checkpoint cadence); survives
	// recovery via the checkpoint's Rounds field plus replayed rounds.
	rounds int
	// appliedLive is the journal-derived ledger of jobs holding applied
	// plans: round records add their placed jobs, fail/revoke records remove
	// their requeued and dropped jobs. The recovery-coherence invariant pins
	// it against the scheduler's own placed set.
	appliedLive map[string]bool
}

// New wraps a freshly built service with a new (or empty) journal. A journal
// that already holds records is history this service does not have — New
// rejects it and directs the caller to Recover, which replays it.
func New(svc *metasched.Service, opts Options) (*Service, error) {
	if svc == nil {
		return nil, fmt.Errorf("durable: nil service")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	m := newDurableMetrics(opts.Metrics)
	j, payloads, _, err := OpenJournal(opts.JournalPath, opts.Sync, m)
	if err != nil {
		return nil, err
	}
	if len(payloads) > 0 {
		j.Close()
		return nil, fmt.Errorf("durable: journal %s holds %d records; use Recover to resume it",
			opts.JournalPath, len(payloads))
	}
	return &Service{svc: svc, j: j, opts: opts, m: m, appliedLive: map[string]bool{}}, nil
}

// Scheduler returns the wrapped scheduler.
func (ds *Service) Scheduler() *metasched.Scheduler { return ds.svc.Scheduler() }

// Unwrap returns the wrapped service.
func (ds *Service) Unwrap() *metasched.Service { return ds.svc }

// QueueDepth returns the number of pending evaluations.
func (ds *Service) QueueDepth() int { return ds.svc.QueueDepth() }

// AppliedLive returns the journal-derived ledger of jobs holding applied
// plans, sorted — the reference side of the recovery-coherence invariant.
func (ds *Service) AppliedLive() []string {
	out := make([]string, 0, len(ds.appliedLive))
	for name := range ds.appliedLive {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close closes the journal. The wrapped service stays usable, but further
// transitions are no longer durable.
func (ds *Service) Close() error { return ds.j.Close() }

// Submit routes a submission through the service and journals it.
func (ds *Service) Submit(j *job.Job) error {
	if err := ds.svc.Submit(j); err != nil {
		return err
	}
	return ds.j.Append(&codec.Record{
		Kind: codec.RecordSubmit,
		Now:  ds.svc.Scheduler().Grid().Now(),
		Job:  j,
	})
}

// HandleNodeFailure routes a node failure through the service and journals
// it with its outcome (the jobs requeued and terminally dropped), which
// replay cross-checks.
func (ds *Service) HandleNodeFailure(nodeLabel string) ([]string, error) {
	before := ds.svc.Scheduler().DroppedJobs()
	requeued, err := ds.svc.HandleNodeFailure(nodeLabel)
	if err != nil {
		return nil, err
	}
	dropped := newlyDropped(before, ds.svc.Scheduler().DroppedJobs())
	ds.forgetApplied(requeued, dropped)
	return requeued, ds.j.Append(&codec.Record{
		Kind:     codec.RecordFail,
		Now:      ds.svc.Scheduler().Grid().Now(),
		Node:     nodeLabel,
		Requeued: requeued,
		Dropped:  dropped,
	})
}

// HandleNodeRecovery routes a node recovery through the service and
// journals it.
func (ds *Service) HandleNodeRecovery(nodeLabel string) error {
	if err := ds.svc.HandleNodeRecovery(nodeLabel); err != nil {
		return err
	}
	return ds.j.Append(&codec.Record{
		Kind: codec.RecordRecover,
		Now:  ds.svc.Scheduler().Grid().Now(),
		Node: nodeLabel,
	})
}

// HandleRevocation routes an owner revocation through the service and
// journals it with its outcome.
func (ds *Service) HandleRevocation(nodeLabel string, span sim.Interval) ([]string, error) {
	before := ds.svc.Scheduler().DroppedJobs()
	requeued, err := ds.svc.HandleRevocation(nodeLabel, span)
	if err != nil {
		return nil, err
	}
	dropped := newlyDropped(before, ds.svc.Scheduler().DroppedJobs())
	ds.forgetApplied(requeued, dropped)
	return requeued, ds.j.Append(&codec.Record{
		Kind:     codec.RecordRevoke,
		Now:      ds.svc.Scheduler().Grid().Now(),
		Node:     nodeLabel,
		Span:     span,
		Requeued: requeued,
		Dropped:  dropped,
	})
}

// Tick runs one full service round — the durable counterpart of
// metasched.Service.Tick — and journals it: the applied combination with its
// snapshot epoch, the windows rejected as stale, and the jobs placed. The
// record is written after the round completes, so a crash anywhere inside
// the round recovers to the pre-round state and the driver re-issues the
// tick; the round is deterministic, so the re-run lands on the same state
// the record would have described.
func (ds *Service) Tick() (*metasched.IterationReport, error) {
	ds.svc.EnqueueTick()
	return ds.round(true)
}

// round drives one BeginRound → Evaluate → Apply → Finish sequence and
// journals the outcome.
func (ds *Service) round(tick bool) (*metasched.IterationReport, error) {
	now := ds.svc.Scheduler().Grid().Now()
	r, err := ds.svc.BeginRound()
	if err != nil {
		return nil, err
	}
	if err := r.Evaluate(); err != nil {
		return nil, err
	}
	plan := r.Plan()
	if err := r.Apply(); err != nil {
		return nil, err
	}
	stale := r.Iteration().StaleJobs()
	rep, err := r.Finish()
	if err != nil {
		return nil, err
	}
	rr := &codec.RoundRecord{
		Iteration: rep.Iteration,
		Tick:      tick,
		Stale:     stale,
	}
	if plan != nil {
		rr.Planned = true
		rr.Epoch = plan.Epoch
		rr.TotalTime = plan.TotalTime
		rr.TotalCost = plan.TotalCost
		for _, ch := range plan.Choices {
			rr.Choices = append(rr.Choices, codec.ChoiceRecord{Job: ch.Job.Name, Window: ch.Window})
		}
	}
	for _, p := range rep.Placed {
		rr.Placed = append(rr.Placed, p.Job.Name)
		ds.appliedLive[p.Job.Name] = true
	}
	if err := ds.j.Append(&codec.Record{Kind: codec.RecordRound, Now: now, Round: rr}); err != nil {
		return nil, err
	}
	ds.rounds++
	if ds.opts.CheckpointEvery > 0 && ds.rounds%ds.opts.CheckpointEvery == 0 {
		if err := ds.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Checkpoint snapshots the complete canonical state — grid, scheduler, and
// service layer — stamped with the journal position it corresponds to, and
// writes it atomically (temp file + rename), so a crash mid-checkpoint
// leaves the previous checkpoint intact.
func (ds *Service) Checkpoint() error {
	if ds.opts.CheckpointPath == "" {
		return fmt.Errorf("durable: no checkpoint path configured")
	}
	svcState, err := ds.svc.ExportState()
	if err != nil {
		return err
	}
	cp := &codec.Checkpoint{
		Seq:           ds.j.Seq(),
		JournalOffset: ds.j.Size(),
		Rounds:        ds.rounds,
		Grid:          ds.svc.Scheduler().Grid().ExportState(),
		Sched:         ds.svc.Scheduler().ExportState(),
		Service:       svcState,
	}
	data, err := codec.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp := ds.opts.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("durable: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, ds.opts.CheckpointPath); err != nil {
		return fmt.Errorf("durable: publish checkpoint: %w", err)
	}
	ds.m.checkpointWritten()
	return nil
}

// forgetApplied removes cancelled jobs from the applied-live ledger.
func (ds *Service) forgetApplied(requeued, dropped []string) {
	for _, name := range requeued {
		delete(ds.appliedLive, name)
	}
	for _, name := range dropped {
		delete(ds.appliedLive, name)
	}
}

// newlyDropped returns the names terminally dropped between two snapshots of
// the scheduler's drop ledger, sorted.
func newlyDropped(before, after map[string]string) []string {
	var out []string
	for name := range after {
		if _, ok := before[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// StateHash digests the service's complete canonical state — grid,
// scheduler, and service layer — as FNV-64a. The crash-injection
// differential compares it between recovered and uncrashed runs; the CLI's
// recover subcommand prints it.
func StateHash(svc *metasched.Service) uint64 {
	var b strings.Builder
	svc.Scheduler().Grid().CanonicalState(&b)
	svc.Scheduler().CanonicalState(&b)
	svc.CanonicalState(&b)
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}
