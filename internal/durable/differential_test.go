package durable_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/codec"
	"ecosched/internal/durable"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// durableFactory rebuilds the pristine pre-journal service for one scenario:
// a fixed 6-node, 4-domain pool, a seeded owner-local arrival stream, and a
// full retry policy, under the given algorithm and shard count. Recovery
// calls this exactly as the original session did — configuration comes from
// code, state from the journal.
func durableFactory(seed uint64, algo alloc.Algorithm, shards int) durable.Factory {
	return func() (*metasched.Service, error) {
		var nodes []*resource.Node
		for i := 0; i < 6; i++ {
			nodes = append(nodes, &resource.Node{
				Name:        fmt.Sprintf("n%d", i+1),
				Performance: 1 + float64(i%3)*0.5,
				Price:       sim.Money(1 + float64(i%4)*0.75),
				Domain:      fmt.Sprintf("d%d", i%4),
			})
		}
		pool, err := resource.NewPool(nodes)
		if err != nil {
			return nil, err
		}
		grid, err := gridsim.New(pool)
		if err != nil {
			return nil, err
		}
		cfg := metasched.Config{
			Algorithm:        algo,
			Policy:           metasched.MinimizeTime,
			Horizon:          600,
			Step:             60,
			MaxBatch:         4,
			MaxPostponements: 4,
			Shards:           shards,
			Retry: &metasched.RetryPolicy{
				MaxAttempts:      2,
				BackoffBase:      40,
				BackoffFactor:    2,
				BackoffMax:       200,
				JitterFrac:       0.2,
				JitterSeed:       seed,
				PriceRelaxFactor: 1.3,
				MaxRelaxations:   2,
			},
			LocalArrivals: &metasched.LocalArrivals{
				Load: gridsim.LocalLoad{MeanGap: 150, DurMin: 20, DurMax: 50},
				RNG:  sim.NewRNG(seed ^ 0xa5a5_5a5a),
			},
		}
		sched, err := metasched.New(cfg, grid)
		if err != nil {
			return nil, err
		}
		return metasched.NewService(sched, metasched.ServiceConfig{})
	}
}

type cmdKind int

const (
	cmdSubmit cmdKind = iota
	cmdFail
	cmdRecover
	cmdRevoke
	cmdTick
)

// cmd is one externally driven transition. Jobs are stored as specs, not
// *job.Job instances: the retry ladder mutates requests in place, so every
// issue must construct a fresh job.
type cmd struct {
	kind     cmdKind
	name     string
	nodes    int
	time     sim.Duration
	priority int
	maxPrice sim.Money
	span     sim.Interval
}

// genCommands derives the deterministic command schedule for a seed: twelve
// rounds, each submitting up to one job and rolling one environment event
// (node failure, recovery, interval revocation) before the tick, plus three
// trailing ticks so backoff-gated requeues get a chance to resolve.
func genCommands(seed uint64) []cmd {
	rng := sim.NewRNG(seed*0x9e3779b9 + 1)
	var cmds []cmd
	failed := map[string]bool{}
	healthy := func() string {
		for tries := 0; tries < 12; tries++ {
			n := fmt.Sprintf("n%d", rng.Uint64()%6+1)
			if !failed[n] {
				return n
			}
		}
		return ""
	}
	anyFailed := func() string {
		for n := range failed {
			return n
		}
		return ""
	}
	jobs := 0
	for round := 0; round < 12; round++ {
		now := sim.Time(60 * round)
		if round < 2 || rng.Uint64()%10 < 7 {
			jobs++
			cmds = append(cmds, cmd{
				kind:     cmdSubmit,
				name:     fmt.Sprintf("j%02d", jobs),
				nodes:    int(rng.Uint64()%2) + 1,
				time:     sim.Duration(30 + rng.Uint64()%40),
				priority: int(rng.Uint64()%3) + 1,
				maxPrice: sim.Money(5 + float64(rng.Uint64()%4)),
			})
		}
		switch rng.Uint64() % 10 {
		case 0, 1:
			if n := healthy(); n != "" && len(failed) < 3 {
				failed[n] = true
				cmds = append(cmds, cmd{kind: cmdFail, name: n})
			}
		case 2, 3:
			if n := anyFailed(); n != "" {
				delete(failed, n)
				cmds = append(cmds, cmd{kind: cmdRecover, name: n})
			}
		case 4, 5:
			if n := healthy(); n != "" {
				start := now.Add(sim.Duration(30 + rng.Uint64()%240))
				cmds = append(cmds, cmd{
					kind: cmdRevoke,
					name: n,
					span: sim.Interval{Start: start, End: start.Add(sim.Duration(30 + rng.Uint64()%60))},
				})
			}
		}
		cmds = append(cmds, cmd{kind: cmdTick})
	}
	for i := 0; i < 3; i++ {
		cmds = append(cmds, cmd{kind: cmdTick})
	}
	return cmds
}

// issue runs one command against the durable service and renders its
// complete outcome — return values, errors, and for ticks the full report —
// as one transcript line. The continuation half of the crash differential
// compares these lines byte for byte.
func issue(ds *durable.Service, c cmd) string {
	switch c.kind {
	case cmdSubmit:
		j := &job.Job{Name: c.name, Priority: c.priority, Request: job.ResourceRequest{
			Nodes: c.nodes, Time: c.time, MinPerformance: 1, MaxPrice: c.maxPrice,
		}}
		return fmt.Sprintf("submit %s err=%v", c.name, ds.Submit(j))
	case cmdFail:
		requeued, err := ds.HandleNodeFailure(c.name)
		return fmt.Sprintf("fail %s requeued=%v err=%v", c.name, requeued, err)
	case cmdRecover:
		return fmt.Sprintf("recover %s err=%v", c.name, ds.HandleNodeRecovery(c.name))
	case cmdRevoke:
		requeued, err := ds.HandleRevocation(c.name, c.span)
		return fmt.Sprintf("revoke %s %v requeued=%v err=%v", c.name, c.span, requeued, err)
	default:
		rep, err := ds.Tick()
		if err != nil {
			return fmt.Sprintf("tick err=%v", err)
		}
		var placed []string
		for _, p := range rep.Placed {
			placed = append(placed, p.Job.Name)
		}
		return fmt.Sprintf("tick it=%d batch=%d placed=%v postponed=%v dropped=%v T=%v C=%v queue=%d depth=%d",
			rep.Iteration, rep.BatchSize, placed, rep.Postponed, rep.Dropped,
			rep.PlanTime, rep.PlanCost, ds.Scheduler().QueueLength(), ds.QueueDepth())
	}
}

// reference runs the full command schedule once under the journal and
// captures everything the crash sweep needs: the per-command outcome lines,
// the state hash at every record boundary, the record count after each
// command, the final journal bytes, and a snapshot of the checkpoint file as
// of each boundary (what a crash at that point would find on disk).
type reference struct {
	cmds      []cmd
	outcomes  []string
	hashes    []uint64 // hashes[r] = state hash after r records
	recordEnd []int    // recordEnd[i] = records on disk after command i
	journal   []byte
	cpAt      [][]byte // cpAt[r] = checkpoint bytes as of r records (nil = absent)
}

func runReference(t *testing.T, dir string, factory durable.Factory, cmds []cmd, checkpointEvery int) *reference {
	t.Helper()
	opts := durable.Options{
		JournalPath:     filepath.Join(dir, "ref.journal"),
		CheckpointPath:  filepath.Join(dir, "ref.checkpoint"),
		CheckpointEvery: checkpointEvery,
	}
	svc, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := durable.New(svc, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ref := &reference{cmds: cmds}
	ref.hashes = append(ref.hashes, durable.StateHash(svc))
	ref.cpAt = append(ref.cpAt, nil)
	records := 0
	for _, c := range cmds {
		ref.outcomes = append(ref.outcomes, issue(ds, c))
		data, err := os.ReadFile(opts.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		payloads, _, _ := codec.ScanFrames(data[len(codec.JournalMagic):])
		if len(payloads) > records {
			if len(payloads) != records+1 {
				t.Fatalf("command appended %d records, want exactly 1", len(payloads)-records)
			}
			records = len(payloads)
			ref.hashes = append(ref.hashes, durable.StateHash(svc))
			cp, err := os.ReadFile(opts.CheckpointPath)
			if err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			ref.cpAt = append(ref.cpAt, cp)
		}
		ref.recordEnd = append(ref.recordEnd, records)
	}
	ref.journal, err = os.ReadFile(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// crashAtEveryRecord truncates the reference journal after every record
// boundary, recovers, and checks byte-identity twice over: the recovered
// canonical state hash matches the uncrashed run at that boundary, and
// re-issuing the remaining commands reproduces the remaining transcript and
// the final state exactly.
func crashAtEveryRecord(t *testing.T, dir string, factory durable.Factory, ref *reference, checkpointEvery int) {
	t.Helper()
	_, ends, _ := codec.ScanFrames(ref.journal[len(codec.JournalMagic):])
	total := len(ends)
	for r := 0; r <= total; r++ {
		cut := len(codec.JournalMagic)
		if r > 0 {
			cut += ends[r-1]
		}
		jp := filepath.Join(dir, fmt.Sprintf("crash-%d.journal", r))
		cpPath := filepath.Join(dir, fmt.Sprintf("crash-%d.checkpoint", r))
		if err := os.WriteFile(jp, ref.journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if len(ref.cpAt[r]) > 0 {
			if err := os.WriteFile(cpPath, ref.cpAt[r], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		opts := durable.Options{JournalPath: jp, CheckpointPath: cpPath, CheckpointEvery: checkpointEvery}
		ds, rep, err := durable.Recover(opts, factory)
		if err != nil {
			t.Fatalf("recover at record %d/%d: %v", r, total, err)
		}
		if got := durable.StateHash(ds.Unwrap()); got != ref.hashes[r] {
			t.Fatalf("record %d/%d: recovered state hash %x, uncrashed run had %x", r, total, got, ref.hashes[r])
		}
		if rep.RecordsScanned != r {
			t.Fatalf("record %d: scanned %d records", r, rep.RecordsScanned)
		}
		if len(ref.cpAt[r]) > 0 && !rep.CheckpointUsed {
			t.Fatalf("record %d: checkpoint on disk but not used", r)
		}
		if rep.CheckpointUsed && rep.RecordsReplayed > rep.RecordsScanned {
			t.Fatalf("record %d: replayed %d of %d records", r, rep.RecordsReplayed, rep.RecordsScanned)
		}

		// Continue the session: first command not fully journaled onward.
		resume := len(ref.cmds)
		for i, end := range ref.recordEnd {
			if end > r {
				resume = i
				break
			}
		}
		for i := resume; i < len(ref.cmds); i++ {
			got := issue(ds, ref.cmds[i])
			if got != ref.outcomes[i] {
				t.Fatalf("record %d, resumed command %d diverged:\n got %s\nwant %s", r, i, got, ref.outcomes[i])
			}
		}
		if got := durable.StateHash(ds.Unwrap()); got != ref.hashes[total] {
			t.Fatalf("record %d: final state hash %x after resume, uncrashed run had %x", r, got, ref.hashes[total])
		}
		ds.Close()
		os.Remove(jp)
		os.Remove(cpPath)
	}
}

// TestCrashInjectionDifferential is the acceptance sweep: 20 seeds across
// {ALP, AMP} × shards {1, 4}, journal truncated after every record, recovery
// plus continuation proven byte-identical to the uncrashed session. Even
// seeds run with checkpoints every 2 rounds (recovery restores the snapshot
// and replays the suffix), odd seeds replay the full journal.
func TestCrashInjectionDifferential(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	if testing.Short() {
		seeds = []uint64{2, 3, 11}
	}
	algos := []struct {
		name string
		algo alloc.Algorithm
	}{{"ALP", alloc.ALP{}}, {"AMP", alloc.AMP{}}}
	for _, shards := range []int{1, 4} {
		for _, a := range algos {
			t.Run(fmt.Sprintf("%s/shards=%d", a.name, shards), func(t *testing.T) {
				for _, seed := range seeds {
					checkpointEvery := 0
					if seed%2 == 0 {
						checkpointEvery = 2
					}
					dir := t.TempDir()
					factory := durableFactory(seed, a.algo, shards)
					ref := runReference(t, dir, factory, genCommands(seed), checkpointEvery)
					crashAtEveryRecord(t, dir, factory, ref, checkpointEvery)
				}
			})
		}
	}
}

// TestTornWriteByteSweep truncates one scenario's journal at every byte
// offset: recovery must land exactly on the last complete record boundary —
// the torn tail is dropped, never loaded partially, and the recovered state
// hash matches the uncrashed run at that boundary.
func TestTornWriteByteSweep(t *testing.T) {
	const seed = 7
	dir := t.TempDir()
	factory := durableFactory(seed, alloc.ALP{}, 1)
	cmds := genCommands(seed)[:8]
	ref := runReference(t, dir, factory, cmds, 0)
	_, ends, _ := codec.ScanFrames(ref.journal[len(codec.JournalMagic):])
	stride := 1
	if testing.Short() {
		stride = 7
	}
	jp := filepath.Join(dir, "torn.journal")
	for cut := len(codec.JournalMagic); cut <= len(ref.journal); cut += stride {
		if err := os.WriteFile(jp, ref.journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := 0
		for _, end := range ends {
			if len(codec.JournalMagic)+end <= cut {
				wantRecords++
			}
		}
		ds, rep, err := durable.Recover(durable.Options{JournalPath: jp}, factory)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rep.RecordsScanned != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, rep.RecordsScanned, wantRecords)
		}
		if got := durable.StateHash(ds.Unwrap()); got != ref.hashes[wantRecords] {
			t.Fatalf("cut %d: state hash %x, uncrashed run had %x at record %d", cut, got, ref.hashes[wantRecords], wantRecords)
		}
		wantTorn := int64(cut - len(codec.JournalMagic))
		if wantRecords > 0 {
			wantTorn = int64(cut - len(codec.JournalMagic) - ends[wantRecords-1])
		}
		if rep.TornBytesDropped != wantTorn {
			t.Fatalf("cut %d: dropped %d torn bytes, want %d", cut, rep.TornBytesDropped, wantTorn)
		}
		ds.Close()
	}
}
