package durable

import (
	"testing"

	"ecosched/internal/metrics"
)

// TestDisabledMetricsZeroAllocs pins the observability-off contract the
// journal hot path relies on: with a nil registry every durable instrument
// method is a nil-receiver no-op performing zero allocations, so running with
// metrics disabled costs nothing beyond the branch.
func TestDisabledMetricsZeroAllocs(t *testing.T) {
	if m := newDurableMetrics(nil); m != nil {
		t.Fatal("nil registry produced non-nil metrics")
	}
	var m *durableMetrics
	if allocs := testing.AllocsPerRun(1000, func() {
		m.appended(128)
		m.checkpointWritten()
		m.replayStarted(true)
		m.recordReplayed()
		m.tornDropped(16)
	}); allocs != 0 {
		t.Fatalf("disabled durable metrics allocate %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = newDurableMetrics(nil)
	}); allocs != 0 {
		t.Fatalf("nil-registry resolution allocates %.1f allocs/op, want 0", allocs)
	}
	// Enabled instruments observe without allocating too — resolution is the
	// only allocating step.
	em := newDurableMetrics(metrics.New())
	if allocs := testing.AllocsPerRun(1000, func() {
		em.appended(128)
		em.recordReplayed()
	}); allocs != 0 {
		t.Fatalf("enabled durable metrics allocate %.1f allocs/op, want 0", allocs)
	}
}
