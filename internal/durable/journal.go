// Package durable makes the continuous metascheduler service crash-safe: a
// write-ahead journal records every externally visible transition (job
// submission, node failure/recovery, interval revocation, and each complete
// plan/apply round) as a length-prefixed, CRC-framed record, and periodic
// checkpoints snapshot the canonical grid + scheduler + service state so
// recovery restores the latest valid checkpoint and replays only the journal
// suffix. The service is a deterministic state machine, so the journal is a
// redo log: records are appended after a transition succeeds, and replaying
// them through the real handlers reproduces the state byte for byte — the
// crash-injection differential truncates the journal at every record and
// every byte offset and proves the recovered canonical state, and the rest
// of the session transcript, identical to the uncrashed run.
package durable

import (
	"fmt"
	"os"

	"ecosched/internal/codec"
)

// Journal is an append-only record log backed by one file. Opening scans the
// existing content, drops a torn tail (the debris of a crash mid-append) by
// truncating the file back to its last complete frame, and resumes appending
// from there.
type Journal struct {
	f    *os.File
	path string
	// size is the current file length; every byte below it is verified.
	size int64
	// seq is the last appended record's sequence number.
	seq uint64
	// sync forces an fsync after every append.
	sync bool
	m    *durableMetrics
}

// OpenJournal opens (creating if absent) the journal at path and returns the
// verified frame payloads already in it, in order, for the caller to decode
// and replay. A brand-new journal gets the magic header; an existing one is
// scanned, its torn tail (if any) truncated away, and appends resume from
// the valid prefix. A file that exists but does not start with the journal
// magic is rejected — it is not a journal, and appending to it would destroy
// whatever it is. The third result reports how many torn-tail bytes were
// dropped.
func OpenJournal(path string, sync bool, m *durableMetrics) (*Journal, [][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("durable: read journal: %w", err)
	}
	j := &Journal{path: path, sync: sync, m: m}
	var payloads [][]byte
	var torn int64
	valid := 0
	switch {
	case len(data) == 0:
		// Fresh (or empty) journal: start with the magic header.
		if err := os.WriteFile(path, []byte(codec.JournalMagic), 0o644); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: init journal: %w", err)
		}
		j.size = int64(len(codec.JournalMagic))
	case len(data) < len(codec.JournalMagic) || string(data[:len(codec.JournalMagic)]) != codec.JournalMagic:
		return nil, nil, 0, fmt.Errorf("durable: %s is not a journal (bad magic)", path)
	default:
		payloads, _, valid = scanJournal(data)
		j.size = int64(len(codec.JournalMagic) + valid)
		if torn = int64(len(data)) - j.size; torn > 0 {
			if err := os.Truncate(path, j.size); err != nil {
				return nil, nil, 0, fmt.Errorf("durable: truncate torn tail: %w", err)
			}
			m.tornDropped(torn)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: open journal: %w", err)
	}
	j.f = f
	return j, payloads, torn, nil
}

// scanJournal splits journal bytes past the magic into verified frame
// payloads. validLen counts payload bytes past the magic.
func scanJournal(data []byte) (payloads [][]byte, ends []int, validLen int) {
	return codec.ScanFrames(data[len(codec.JournalMagic):])
}

// Append journals one record. The record's sequence number is assigned here
// (monotone from the journal's resume point) and the framed bytes hit the
// file before Append returns; with sync on they are fsynced too.
func (j *Journal) Append(rec *codec.Record) error {
	j.seq++
	rec.Seq = j.seq
	frame, err := codec.EncodeRecord(rec)
	if err != nil {
		j.seq--
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: sync: %w", err)
		}
	}
	j.size += int64(len(frame))
	j.m.appended(int64(len(frame)))
	return nil
}

// Size returns the journal's current byte length (magic included). A
// checkpoint stamps this as its JournalOffset.
func (j *Journal) Size() int64 { return j.size }

// Seq returns the last appended record's sequence number.
func (j *Journal) Seq() uint64 { return j.seq }

// resume sets the sequence counter after the existing records were scanned.
func (j *Journal) resume(seq uint64) { j.seq = seq }

// Close closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
