package durable

import "ecosched/internal/metrics"

// durableMetrics holds the journal/recovery instruments under the
// "metasched/durable/" prefix. All fields are nil when observability is off
// (nil registry), making every observation a no-op branch — the
// allocation-parity test pins that the disabled path allocates nothing.
type durableMetrics struct {
	// Journal write path.
	records     *metrics.Counter
	bytes       *metrics.Counter
	checkpoints *metrics.Counter
	// Recovery path.
	replays      *metrics.Counter
	replayed     *metrics.Counter
	tornBytes    *metrics.Counter
	checkpointed *metrics.Counter
}

// newDurableMetrics resolves the instruments; a nil registry returns nil and
// every method below accepts that.
func newDurableMetrics(r *metrics.Registry) *durableMetrics {
	if r == nil {
		return nil
	}
	return &durableMetrics{
		records:      r.Counter("metasched/durable/records_appended_total"),
		bytes:        r.Counter("metasched/durable/journal_bytes_total"),
		checkpoints:  r.Counter("metasched/durable/checkpoints_written_total"),
		replays:      r.Counter("metasched/durable/replays_total"),
		replayed:     r.Counter("metasched/durable/records_replayed_total"),
		tornBytes:    r.Counter("metasched/durable/torn_tail_bytes_dropped_total"),
		checkpointed: r.Counter("metasched/durable/recoveries_from_checkpoint_total"),
	}
}

func (m *durableMetrics) appended(frameBytes int64) {
	if m == nil {
		return
	}
	m.records.Inc()
	m.bytes.Add(frameBytes)
}

func (m *durableMetrics) checkpointWritten() {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
}

func (m *durableMetrics) replayStarted(fromCheckpoint bool) {
	if m == nil {
		return
	}
	m.replays.Inc()
	if fromCheckpoint {
		m.checkpointed.Inc()
	}
}

func (m *durableMetrics) recordReplayed() {
	if m == nil {
		return
	}
	m.replayed.Inc()
}

func (m *durableMetrics) tornDropped(bytes int64) {
	if m == nil {
		return
	}
	m.tornBytes.Add(bytes)
}
