package fault_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/durable"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/metasched"
	"ecosched/internal/sim"
)

// durableChaosFactory rebuilds the chaos scenario's pristine pre-journal
// service — pool, local load, retry policy, and the 8 submitted jobs all come
// deterministically from the seed, which is exactly the contract
// durable.Recover's factory must honor.
func durableChaosFactory(t testing.TB, seed uint64, algo alloc.Algorithm) durable.Factory {
	return func() (*metasched.Service, error) {
		sched := chaosScheduler(t, seed, algo, metasched.MinimizeTime, 1, false, false, false)
		return metasched.NewService(sched, metasched.ServiceConfig{})
	}
}

// TestCrashStormSoak is the chaos soak's crash-storm mode: the full chaos
// session runs over the durable journaling wrapper and is crashed after every
// single round — the wrapper is dropped on the floor and rebuilt with
// durable.Recover (checkpoint restore on even cadence, full journal replay
// otherwise), then the session resumes where the plan left off. The storm
// must be invisible three ways: the state hash after every recovery equals
// the uncrashed run's hash at the same round, the recovery-coherence audit
// (journal applied-plan ledger vs scheduler placed set vs live reservations)
// stays clean after every recovery, and the transcript assembled across all
// ten crashed segments is byte-identical to the uncrashed session's. A
// crash-free durable run is compared too, proving the wrapper itself is
// transcript-neutral.
func TestCrashStormSoak(t *testing.T) {
	seeds := []uint64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, a := range []struct {
			name string
			algo alloc.Algorithm
		}{{"ALP", alloc.ALP{}}, {"AMP", alloc.AMP{}}} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, a.name), func(t *testing.T) {
				factory := durableChaosFactory(t, seed, a.algo)
				plan := chaosPlan(t, chaosScheduler(t, seed, a.algo, metasched.MinimizeTime, 1, false, false, false).Grid().Pool(), seed, 0.6)

				// Uncrashed reference: plain service session, stepped so the
				// canonical state hash is captured at every round boundary.
				refSvc, err := factory()
				if err != nil {
					t.Fatal(err)
				}
				var base strings.Builder
				refSess, err := fault.NewServiceSession(refSvc, plan, &base)
				if err != nil {
					t.Fatal(err)
				}
				hashes := make([]uint64, chaosIterations+1)
				hashes[0] = durable.StateHash(refSvc)
				for i := 0; i < chaosIterations; i++ {
					if err := refSess.Step(); err != nil {
						t.Fatalf("reference step %d: %v", i, err)
					}
					hashes[i+1] = durable.StateHash(refSvc)
				}
				fault.WriteSummary(&base, refSvc.Scheduler(), refSess.Applied(), plan.Len())
				if !strings.Contains(base.String(), "fault ") {
					t.Fatal("chaos session injected no faults — the storm is not storming")
				}

				// Crash-free durable run: the wrapper must be transcript-neutral.
				dir := t.TempDir()
				cpEvery := 0
				if seed%2 != 0 {
					cpEvery = 2
				}
				neutralOpts := durable.Options{
					JournalPath:     filepath.Join(dir, "neutral.journal"),
					CheckpointPath:  filepath.Join(dir, "neutral.ckpt"),
					CheckpointEvery: cpEvery,
				}
				nSvc, err := factory()
				if err != nil {
					t.Fatal(err)
				}
				nds, err := durable.New(nSvc, neutralOpts)
				if err != nil {
					t.Fatal(err)
				}
				var neutral strings.Builder
				nSess, err := fault.NewDriverSession(nds, plan, &neutral)
				if err != nil {
					t.Fatal(err)
				}
				if err := nSess.Run(chaosIterations); err != nil {
					t.Fatalf("crash-free durable run: %v", err)
				}
				if neutral.String() != base.String() {
					t.Fatalf("durable wrapper changed the transcript\n--- plain ---\n%s\n--- durable ---\n%s",
						base.String(), neutral.String())
				}

				// The storm: crash and recover after every round.
				opts := durable.Options{
					JournalPath:     filepath.Join(dir, "storm.journal"),
					CheckpointPath:  filepath.Join(dir, "storm.ckpt"),
					CheckpointEvery: cpEvery,
				}
				sSvc, err := factory()
				if err != nil {
					t.Fatal(err)
				}
				ds, err := durable.New(sSvc, opts)
				if err != nil {
					t.Fatal(err)
				}
				var storm strings.Builder
				sess, err := fault.NewDriverSession(ds, plan, &storm)
				if err != nil {
					t.Fatal(err)
				}
				applied := 0
				for i := 0; i < chaosIterations; i++ {
					if err := sess.Step(); err != nil {
						t.Fatalf("storm round %d: %v", i, err)
					}
					applied = sess.Applied()
					if got := durable.StateHash(ds.Unwrap()); got != hashes[i+1] {
						t.Fatalf("round %d: pre-crash hash %x, reference %x", i, got, hashes[i+1])
					}
					// Crash: abandon the wrapper mid-flight and recover from disk.
					ds.Close()
					rds, rep, err := durable.Recover(opts, factory)
					if err != nil {
						t.Fatalf("recover after round %d: %v", i, err)
					}
					if got := durable.StateHash(rds.Unwrap()); got != hashes[i+1] {
						t.Fatalf("round %d: recovered hash %x, reference %x", i, got, hashes[i+1])
					}
					if cpEvery > 0 && i+1 >= cpEvery && !rep.CheckpointUsed {
						t.Fatalf("round %d: recovery ignored the checkpoint", i)
					}
					if err := fault.NewAudit(rds.Scheduler()).CheckRecoveryCoherence(rep.AppliedLive); err != nil {
						t.Fatalf("round %d: %v", i, err)
					}
					ds = rds
					sess, err = fault.NewDriverSession(ds, plan, &storm)
					if err != nil {
						t.Fatal(err)
					}
					if err := sess.Resume(applied); err != nil {
						t.Fatal(err)
					}
				}
				fault.WriteSummary(&storm, ds.Scheduler(), applied, plan.Len())
				ds.Close()
				if storm.String() != base.String() {
					t.Fatalf("crash-storm transcript diverged from uncrashed run\n--- uncrashed ---\n%s\n--- storm ---\n%s",
						base.String(), storm.String())
				}
			})
		}
	}
}

// TestSessionDrain pins the end-of-plan draining contract: Run(n) stops after
// exactly n rounds and Pending reports the work it left in flight — plan
// events not yet applied and service evaluations still queued (backoff-gated
// requeues above all). Drain finishes that tail under the same audit, errors
// when its round budget is too small, and leaves the session quiescent.
func TestSessionDrain(t *testing.T) {
	half := chaosIterations / 2
	sawPending := false
	for _, seed := range []uint64{3, 7, 11} {
		// Service mode: half-length run, then drain.
		sched := chaosScheduler(t, seed, alloc.AMP{}, metasched.MinimizeTime, 1, false, false, false)
		svc, err := metasched.NewService(sched, metasched.ServiceConfig{})
		if err != nil {
			t.Fatal(err)
		}
		plan := chaosPlan(t, sched.Grid().Pool(), seed, 0.6)
		var b strings.Builder
		sess, err := fault.NewServiceSession(svc, plan, &b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < half; i++ {
			if err := sess.Step(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
		if sess.Pending() == 0 {
			continue
		}
		sawPending = true
		if _, err := sess.Drain(0); err == nil {
			t.Fatalf("seed %d: Drain(0) with %d pending returned no error", seed, sess.Pending())
		}
		ran, err := sess.Drain(60)
		if err != nil {
			t.Fatalf("seed %d: drain: %v\ntranscript:\n%s", seed, err, b.String())
		}
		if ran == 0 {
			t.Fatalf("seed %d: drain ran no rounds with work pending", seed)
		}
		if sess.Pending() != 0 {
			t.Fatalf("seed %d: %d still pending after drain", seed, sess.Pending())
		}
		if sess.Applied() != plan.Len() {
			t.Fatalf("seed %d: drain finished with %d/%d events applied", seed, sess.Applied(), plan.Len())
		}
		if svc.QueueDepth() != 0 {
			t.Fatalf("seed %d: drain finished with %d evaluations queued", seed, svc.QueueDepth())
		}
		if v := sess.Audit().Violations(); len(v) > 0 {
			t.Fatalf("seed %d: %d audit violations during drain: %v", seed, len(v), v)
		}
		if !strings.Contains(b.String(), fmt.Sprintf("drained rounds=%d events=%d/%d\n", ran, plan.Len(), plan.Len())) {
			t.Fatalf("seed %d: drain footer missing from transcript:\n%s", seed, b.String())
		}
	}
	if !sawPending {
		t.Fatal("no seed left work pending after a half-length run — the drain path was never exercised")
	}

	// Batch mode: Pending counts unapplied plan events and Drain applies them.
	sched := chaosScheduler(t, 3, alloc.ALP{}, metasched.MinimizeTime, 1, false, false, false)
	plan := chaosPlan(t, sched.Grid().Pool(), 3, 0.6)
	sess, err := fault.NewSession(sched, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Pending() != plan.Len()-sess.Applied() {
		t.Fatalf("batch Pending = %d, want the %d unapplied events", sess.Pending(), plan.Len()-sess.Applied())
	}
	if sess.Pending() > 0 {
		if _, err := sess.Drain(60); err != nil {
			t.Fatalf("batch drain: %v", err)
		}
		if sess.Applied() != plan.Len() || sess.Pending() != 0 {
			t.Fatalf("batch drain left %d pending, %d/%d events applied", sess.Pending(), sess.Applied(), plan.Len())
		}
	}

	// A resumed cursor is only valid on a fresh session and inside the plan.
	fresh, err := fault.NewSession(chaosScheduler(t, 3, alloc.ALP{}, metasched.MinimizeTime, 1, false, false, false), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Resume(plan.Len() + 1); err == nil {
		t.Fatal("Resume accepted a cursor past the plan end")
	}
	if err := fresh.Resume(1); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Resume(1); err == nil {
		t.Fatal("Resume accepted a second fast-forward")
	}
}

// TestCheckRecoveryCoherence drives the recovery-coherence invariant against
// hand-made incoherent states — a placed job missing from the journal ledger,
// a journaled applied plan whose job vanished from the placed set, and a live
// reservation no journal record covers — to prove the crash-storm's "clean
// after every recovery" claim has teeth.
func TestCheckRecoveryCoherence(t *testing.T) {
	sched := chaosScheduler(t, 1, alloc.ALP{}, metasched.MinimizeTime, 1, false, false, false)
	a := fault.NewAudit(sched)
	if err := a.CheckRecoveryCoherence(nil); err != nil {
		t.Fatalf("pristine scheduler with empty ledger flagged: %v", err)
	}
	for i := 0; i < 4 && sched.PlacedCount() == 0; i++ {
		if _, err := sched.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	placed := sched.PlacedJobs()
	if len(placed) == 0 {
		t.Fatal("scenario placed no jobs — the coherence checks below would be vacuous")
	}
	if err := a.CheckRecoveryCoherence(placed); err != nil {
		t.Fatalf("coherent state flagged: %v", err)
	}
	if err := a.CheckRecoveryCoherence(placed[1:]); err == nil ||
		!strings.Contains(err.Error(), "no journaled applied plan") {
		t.Fatalf("placed job missing from the ledger not flagged, got: %v", err)
	}
	if err := a.CheckRecoveryCoherence(append(append([]string{}, placed...), "zz-ghost")); err == nil ||
		!strings.Contains(err.Error(), "lost") {
		t.Fatalf("ledger entry without a placed job not flagged, got: %v", err)
	}
	// An unlogged booking smuggled past the scheduler: live VO reservation
	// with no ledger cover.
	now := sched.Grid().Now()
	sched.Grid().ForceBook(gridsim.Task{Name: "orphan", Node: 0, Span: sim.Interval{Start: now.Add(10), End: now.Add(100)}})
	if err := a.CheckRecoveryCoherence(placed); err == nil ||
		!strings.Contains(err.Error(), "live reservation") {
		t.Fatalf("unlogged live reservation not flagged, got: %v", err)
	}
}
