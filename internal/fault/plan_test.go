package fault_test

import (
	"fmt"
	"testing"

	"ecosched/internal/fault"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

func testPool(t *testing.T, n int) *resource.Pool {
	t.Helper()
	nodes := make([]*resource.Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, &resource.Node{
			Name:        fmt.Sprintf("n%d", i+1),
			Performance: 1 + float64(i%3),
			Price:       sim.Money(2 + i%4),
			Domain:      fmt.Sprintf("d%d", i%3),
		})
	}
	return resource.MustNewPool(nodes)
}

// TestPlanRoundTrip pins the DSL: ParsePlan(p.String()) reproduces the plan
// exactly, including time-sorted normalization of out-of-order input.
func TestPlanRoundTrip(t *testing.T) {
	const text = "recover@600:n3; fail@300:n3;revoke@450:n5:500-700;;fail@450:n1"
	p, err := fault.ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []fault.Event{
		{At: 300, Kind: fault.Fail, Node: "n3"},
		{At: 450, Kind: fault.Revoke, Node: "n5", Span: sim.Interval{Start: 500, End: 700}},
		{At: 450, Kind: fault.Fail, Node: "n1"},
		{At: 600, Kind: fault.Recover, Node: "n3"},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %v", len(p.Events), len(want), p.Events)
	}
	for i, e := range want {
		if p.Events[i] != e {
			t.Errorf("event %d = %v, want %v", i, p.Events[i], e)
		}
	}
	rendered := p.String()
	back, err := fault.ParsePlan(rendered)
	if err != nil {
		t.Fatalf("reparsing %q: %v", rendered, err)
	}
	if back.String() != rendered {
		t.Fatalf("round trip diverged:\n first: %s\nsecond: %s", rendered, back.String())
	}
}

// TestParsePlanErrors pins the parser's rejection of malformed entries.
func TestParsePlanErrors(t *testing.T) {
	cases := []string{
		"fail300:n1",            // missing '@'
		"melt@300:n1",           // unknown kind
		"fail@xx:n1",            // bad time
		"fail@300",              // missing node
		"fail@-5:n1",            // negative time
		"fail@300:",             // empty node
		"fail@300:n1:10-20",     // span on a non-revoke event
		"revoke@300:n1",         // revoke without span
		"revoke@300:n1:10",      // span missing '-'
		"revoke@300:n1:xx-20",   // bad span start
		"revoke@300:n1:10-yy",   // bad span end
		"revoke@300:n1:200-100", // inverted span
		"revoke@300:n1:50-50",   // empty span
	}
	for _, c := range cases {
		if _, err := fault.ParsePlan(c); err == nil {
			t.Errorf("ParsePlan(%q) accepted malformed input", c)
		}
	}
	empty, err := fault.ParsePlan("")
	if err != nil || empty.Len() != 0 {
		t.Fatalf("ParsePlan(\"\") = %v events, err %v; want an empty plan", empty.Len(), err)
	}
}

// TestPlanValidatePool checks the pool-level validation CLI drivers rely on.
func TestPlanValidatePool(t *testing.T) {
	pool := testPool(t, 3)
	ok, err := fault.ParsePlan("fail@100:n2;recover@200:n2")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(pool); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad, err := fault.ParsePlan("fail@100:ghost")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(pool); err == nil {
		t.Fatal("plan targeting an unknown node passed pool validation")
	}
}

// TestStorm checks the batch-wide generator: the requested node fraction
// crashes at the storm instant, each crash pairs with a recovery when an
// outage is given, at least one node survives, and the same seed reproduces
// the same storm.
func TestStorm(t *testing.T) {
	pool := testPool(t, 10)
	events := fault.Storm(pool, 500, 0.5, 200, sim.NewRNG(42))
	fails, recovers := 0, 0
	seen := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case fault.Fail:
			fails++
			if e.At != 500 {
				t.Errorf("storm failure at %v, want 500", e.At)
			}
			if seen[e.Node] {
				t.Errorf("storm failed node %s twice", e.Node)
			}
			seen[e.Node] = true
		case fault.Recover:
			recovers++
			if e.At != 700 {
				t.Errorf("storm recovery at %v, want 700", e.At)
			}
		default:
			t.Errorf("storm produced unexpected event %v", e)
		}
	}
	if fails != 5 || recovers != 5 {
		t.Fatalf("storm produced %d failures and %d recoveries, want 5 and 5", fails, recovers)
	}

	again := fault.Storm(pool, 500, 0.5, 200, sim.NewRNG(42))
	if fmt.Sprint(again) != fmt.Sprint(events) {
		t.Fatal("same seed produced a different storm")
	}

	// A full-pool storm must still leave one node standing.
	total := fault.Storm(pool, 100, 1.0, 0, sim.NewRNG(7))
	if len(total) != pool.Size()-1 {
		t.Fatalf("fraction 1.0 storm crashed %d of %d nodes, want all but one", len(total), pool.Size())
	}
	if fault.Storm(pool, 100, 0, 0, sim.NewRNG(7)) != nil {
		t.Fatal("zero-fraction storm produced events")
	}
}

// TestRandomPlan checks the seeded generator: deterministic per seed,
// rate-monotone, every event valid against the pool and round-trippable
// through the DSL.
func TestRandomPlan(t *testing.T) {
	pool := testPool(t, 8)
	spec := fault.RandomSpec{
		Seed: 11, Horizon: 3000, Step: 150,
		Rate: 0.5, RevokeFraction: 0.3, Outage: 450,
	}
	p, err := fault.RandomPlan(pool, spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 {
		t.Fatal("rate-0.5 plan over 19 boundaries generated no events")
	}
	if err := p.Validate(pool); err != nil {
		t.Fatalf("random plan failed pool validation: %v", err)
	}
	back, err := fault.ParsePlan(p.String())
	if err != nil || back.String() != p.String() {
		t.Fatalf("random plan does not round-trip through the DSL: %v", err)
	}
	again, err := fault.RandomPlan(pool, spec)
	if err != nil || again.String() != p.String() {
		t.Fatalf("same spec produced a different plan (err %v)", err)
	}

	quiet, err := fault.RandomPlan(pool, fault.RandomSpec{Seed: 11, Horizon: 3000, Step: 150})
	if err != nil || quiet.Len() != 0 {
		t.Fatalf("rate-0 plan has %d events (err %v), want none", quiet.Len(), err)
	}
	if _, err := fault.RandomPlan(pool, fault.RandomSpec{Seed: 1, Horizon: 0, Step: 150}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := fault.RandomPlan(pool, fault.RandomSpec{Seed: 1, Horizon: 100, Step: 10, Rate: 1.5}); err == nil {
		t.Fatal("rate above 1 accepted")
	}
}
