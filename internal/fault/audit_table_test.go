package fault_test

import (
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/metasched"
	"ecosched/internal/sim"
)

// corruptTarget wraps a real scheduler and overrides a single ledger
// accessor, so each conservation invariant can be tripped in isolation
// without inventing a corrupt execution path through the production code.
type corruptTarget struct {
	fault.Target
	submittedDelta int
	stats          *metasched.RetryStats
}

func (c corruptTarget) SubmittedCount() int {
	return c.Target.SubmittedCount() + c.submittedDelta
}

func (c corruptTarget) RetryStats() metasched.RetryStats {
	if c.stats != nil {
		return *c.stats
	}
	return c.Target.RetryStats()
}

// TestAuditFailureModes drives the auditor against hand-built corrupt
// states, one per invariant: every clause of the safety set must trip on
// exactly the corruption aimed at it. Until this suite the auditor was only
// ever exercised on healthy states plus three ad-hoc breakages; this is the
// systematic complement — the same states the model checker's mutation
// harness steers the real code towards.
func TestAuditFailureModes(t *testing.T) {
	span := func(s, e int64) sim.Interval { return sim.Interval{Start: sim.Time(s), End: sim.Time(e)} }
	cases := []struct {
		name string
		// corrupt mutates a healthy scheduler/grid (and may drive the
		// audit's event hooks) into the broken state under test.
		corrupt func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit)
		// wrap, when set, interposes a ledger-corrupting Target.
		wrap func(s *metasched.Scheduler) fault.Target
		// want are substrings each expected violation must contain, in
		// order; the corruption must produce exactly len(want) violations.
		want []string
	}{
		{
			name: "empty-span-booking",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				g.ForceBook(gridsim.Task{Name: "hollow", Node: 0, Span: span(50, 50)})
			},
			want: []string{"empty or invalid span"},
		},
		{
			name: "double-booking",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				g.ForceBook(gridsim.Task{Name: "first", Node: 0, Span: span(10, 50)})
				g.ForceBook(gridsim.Task{Name: "second", Node: 0, Span: span(30, 60)})
			},
			want: []string{"double-booking"},
		},
		{
			name: "bookings-out-of-order",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				// Appended out of start order; an out-of-order pair always
				// also reads as an overlap (prev ends after next starts by
				// construction), so two violations are expected.
				g.ForceBook(gridsim.Task{Name: "later", Node: 1, Span: span(100, 140)})
				g.ForceBook(gridsim.Task{Name: "earlier", Node: 1, Span: span(10, 40)})
			},
			want: []string{"bookings out of order", "double-booking"},
		},
		{
			name: "negative-income",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				// A refund with no matching charge — the double-refund bug.
				g.AdjustIncome("d0", -5)
			},
			want: []string{"income -5.00 is negative"},
		},
		{
			name: "job-conservation",
			wrap: func(s *metasched.Scheduler) fault.Target {
				return corruptTarget{Target: s, submittedDelta: 1}
			},
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {},
			want:    []string{"job conservation broken"},
		},
		{
			name: "cancellation-conservation",
			wrap: func(s *metasched.Scheduler) fault.Target {
				return corruptTarget{Target: s, stats: &metasched.RetryStats{Cancelled: 1}}
			},
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {},
			want:    []string{"cancellation conservation broken"},
		},
		{
			name: "live-reservation-on-failed-node",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				if _, err := g.FailNode(0, 0); err != nil {
					t.Fatal(err)
				}
				g.ForceBook(gridsim.Task{Name: "zombie", Node: 0, Span: span(10, 400)})
			},
			want: []string{"failed node n1 holds live reservation"},
		},
		{
			name: "resurrection",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				victim := gridsim.Task{Name: "victim", Node: 0, Span: span(100, 200)}
				if err := g.Book(victim); err != nil {
					t.Fatal(err)
				}
				a.BeginEvent()
				g.CancelJob("victim")
				ev := fault.Event{At: 0, Kind: fault.Revoke, Node: "n1", Span: span(100, 200)}
				if got := a.EndEvent(ev); len(got) != 1 {
					t.Fatalf("EndEvent reported %v, want one cancellation", got)
				}
				if keys := a.CancelledKeys(); len(keys) != 1 || !strings.Contains(keys[0], "victim") {
					t.Fatalf("CancelledKeys = %v, want the victim's key", keys)
				}
				g.ForceBook(victim)
			},
			want: []string{"resurrected"},
		},
		{
			name: "event-adds-capacity",
			corrupt: func(t *testing.T, s *metasched.Scheduler, g *gridsim.Grid, a *fault.Audit) {
				a.BeginEvent()
				g.ForceBook(gridsim.Task{Name: "smuggled", Node: 1, Span: span(50, 90)})
				a.EndEvent(fault.Event{At: 0, Kind: fault.Recover, Node: "n2"})
			},
			want: []string{"must only remove capacity"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool := testPool(t, 3)
			grid, err := gridsim.New(pool)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := metasched.New(metasched.Config{
				Algorithm: alloc.ALP{}, Horizon: 1000, Step: 100,
			}, grid)
			if err != nil {
				t.Fatal(err)
			}
			var target fault.Target = sched
			if tc.wrap != nil {
				target = tc.wrap(sched)
			}
			audit := fault.NewAudit(target)
			if tc.wrap == nil {
				// The healthy state is clean, so whatever trips next is
				// the corruption's doing. (Wrapped targets are corrupt
				// from the start by construction.)
				if err := audit.Check(); err != nil {
					t.Fatalf("healthy state flagged: %v", err)
				}
			}
			tc.corrupt(t, sched, grid, audit)
			// Some corruptions are caught by the event hooks during corrupt
			// (event-adds-capacity), the rest by Check; either way the full
			// violation log must hold exactly the expected breaches.
			audit.Check()
			got := audit.Violations()
			if len(got) == 0 {
				t.Fatal("corrupt state passed the audit")
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d violations %v, want %d", len(got), got, len(tc.want))
			}
			for i, want := range tc.want {
				if !strings.Contains(got[i], want) {
					t.Errorf("violation %d = %q, want it to mention %q", i, got[i], want)
				}
			}
		})
	}
}
