// Package fault is the deterministic fault-injection engine for the
// metascheduler: it compiles a Plan of timed events — node crashes, node
// recoveries (re-join with fresh vacancy), transient slot revocations (an
// owner reclaiming a booked interval), and batch-wide fault storms — and
// drives them through the gridsim/metasched hooks between scheduling
// iterations. The paper schedules over non-dedicated resources whose owners
// can preempt or withdraw capacity at any moment; this package makes that
// environment dynamics a first-class, seeded, replayable event stream
// instead of a manual one-shot FailNode call.
//
// Everything is deterministic: a Plan is an explicit sorted event list, the
// generators draw only from an explicitly seeded sim.RNG, and the Session
// driver emits a canonical transcript — so the chaos soak can require
// byte-identical behaviour across every engine toggle (DP engine, slot
// index, search parallelism) and the Audit invariant checker can pin the
// global safety properties after every injected event.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// Kind classifies a fault event.
type Kind int

const (
	// Fail crashes a node: vacancy disappears, live reservations cancel.
	Fail Kind = iota
	// Recover re-joins a failed node with fresh vacancy.
	Recover
	// Revoke reclaims a slot interval for the owner, cancelling only the
	// VO reservations overlapping it.
	Revoke
)

// String names the kind (also the plan-DSL keyword).
func (k Kind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	case Revoke:
		return "revoke"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault.
type Event struct {
	// At is the injection time: the event fires before the first
	// iteration whose clock has reached it.
	At sim.Time
	// Kind classifies the event.
	Kind Kind
	// Node is the target node label.
	Node string
	// Span is the reclaimed interval; Revoke events only.
	Span sim.Interval
}

// String renders the event in the plan DSL: kind@time:node[:start-end].
func (e Event) String() string {
	if e.Kind == Revoke {
		return fmt.Sprintf("%s@%d:%s:%d-%d", e.Kind, e.At, e.Node, e.Span.Start, e.Span.End)
	}
	return fmt.Sprintf("%s@%d:%s", e.Kind, e.At, e.Node)
}

// Validate checks one event in isolation.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("fault: event %v at negative time", e)
	}
	if e.Node == "" {
		return fmt.Errorf("fault: event at %v without a node", e.At)
	}
	switch e.Kind {
	case Fail, Recover:
		return nil
	case Revoke:
		if e.Span.Empty() || !e.Span.Valid() {
			return fmt.Errorf("fault: revoke event %v with empty or invalid span", e)
		}
		return nil
	default:
		return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
	}
}

// Plan is a normalized (time-sorted) fault schedule.
type Plan struct {
	// Events in non-decreasing At order; ties keep construction order, so
	// a storm's simultaneous failures apply in a defined sequence.
	Events []Event
}

// NewPlan builds a plan from events, validating and stable-sorting by time.
func NewPlan(events ...Event) (*Plan, error) {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].At < sorted[k].At })
	return &Plan{Events: sorted}, nil
}

// String renders the plan in the DSL, one entry per event joined by ';'.
// ParsePlan(p.String()) reproduces the plan exactly.
func (p *Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Len returns the number of events.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Validate checks every event against a node pool: all target labels must
// exist. Parsing alone cannot know the pool; CLI and test drivers call this
// before running a plan.
func (p *Plan) Validate(pool *resource.Pool) error {
	for _, e := range p.Events {
		if pool.ByName(e.Node) == nil {
			return fmt.Errorf("fault: event %v targets unknown node %q", e, e.Node)
		}
	}
	return nil
}

// ParsePlan parses the textual plan DSL:
//
//	fail@300:n3;recover@600:n3;revoke@450:n5:500-700
//
// Entries are separated by ';' (surrounding spaces ignored, empty entries
// skipped); each is kind@time:node, with a :start-end span on revoke
// entries. The result is normalized (time-sorted).
func ParsePlan(s string) (*Plan, error) {
	var events []Event
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		e, err := parseEvent(entry)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return NewPlan(events...)
}

func parseEvent(s string) (Event, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: entry %q missing '@'", s)
	}
	var kind Kind
	switch kindStr {
	case "fail":
		kind = Fail
	case "recover":
		kind = Recover
	case "revoke":
		kind = Revoke
	default:
		return Event{}, fmt.Errorf("fault: entry %q has unknown kind %q", s, kindStr)
	}
	atStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: entry %q missing ':node'", s)
	}
	at, err := strconv.ParseInt(atStr, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: entry %q has bad time: %v", s, err)
	}
	e := Event{At: sim.Time(at), Kind: kind}
	if kind == Revoke {
		node, spanStr, ok := strings.Cut(rest, ":")
		if !ok {
			return Event{}, fmt.Errorf("fault: revoke entry %q missing ':start-end'", s)
		}
		startStr, endStr, ok := strings.Cut(spanStr, "-")
		if !ok {
			return Event{}, fmt.Errorf("fault: revoke entry %q span missing '-'", s)
		}
		start, err := strconv.ParseInt(startStr, 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: revoke entry %q has bad span start: %v", s, err)
		}
		end, err := strconv.ParseInt(endStr, 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: revoke entry %q has bad span end: %v", s, err)
		}
		e.Node = node
		e.Span = sim.Interval{Start: sim.Time(start), End: sim.Time(end)}
	} else {
		if strings.Contains(rest, ":") {
			return Event{}, fmt.Errorf("fault: entry %q has a span on a non-revoke event", s)
		}
		e.Node = rest
	}
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	return e, nil
}

// Storm returns the events of a batch-wide fault storm: ceil(fraction·N)
// distinct seeded-random nodes (always leaving at least one node up) crash
// at the given instant, and — when outage is positive — each recovers
// outage ticks later. Appending the result to other events via NewPlan keeps
// the whole schedule normalized.
func Storm(pool *resource.Pool, at sim.Time, fraction float64, outage sim.Duration, rng *sim.RNG) []Event {
	if fraction <= 0 || pool.Size() == 0 {
		return nil
	}
	if fraction > 1 {
		fraction = 1
	}
	n := (pool.Size()*int(fraction*1000) + 999) / 1000
	if n >= pool.Size() {
		n = pool.Size() - 1
	}
	if n <= 0 {
		return nil
	}
	nodes := pool.Nodes()
	var events []Event
	for _, idx := range rng.Perm(len(nodes))[:n] {
		label := nodes[idx].Label()
		events = append(events, Event{At: at, Kind: Fail, Node: label})
		if outage > 0 {
			events = append(events, Event{At: at.Add(outage), Kind: Recover, Node: label})
		}
	}
	return events
}

// RandomSpec parameterizes RandomPlan.
type RandomSpec struct {
	// Seed drives every random choice.
	Seed uint64
	// Horizon bounds event times to [Step, Horizon).
	Horizon sim.Time
	// Step is the event grid: one potential fault per Step boundary —
	// aligned with a metascheduler session's iteration step, this yields
	// one potential fault per iteration.
	Step sim.Duration
	// Rate is the probability a boundary carries a fault event; 0.05 and
	// 0.20 are the benchmark's "5%" and "20%" fault rates.
	Rate float64
	// RevokeFraction is the share of fault events that are slot
	// revocations rather than node crashes.
	RevokeFraction float64
	// Outage is how long a crashed node stays down before its recovery
	// event; 0 makes crashes permanent.
	Outage sim.Duration
}

// RandomPlan compiles a seeded random fault schedule over the spec's
// horizon. Crashes never take the last live node down, and every crash with
// a positive Outage schedules the matching recovery, so long sessions churn
// instead of draining the pool.
func RandomPlan(pool *resource.Pool, spec RandomSpec) (*Plan, error) {
	if spec.Step <= 0 || spec.Horizon <= 0 {
		return nil, fmt.Errorf("fault: random plan needs positive step and horizon")
	}
	if spec.Rate < 0 || spec.Rate > 1 {
		return nil, fmt.Errorf("fault: random plan rate %v outside [0, 1]", spec.Rate)
	}
	rng := sim.NewRNG(spec.Seed)
	nodes := pool.Nodes()
	down := make(map[string]sim.Time) // label -> recovery time (0 = permanent)
	var events []Event
	for at := sim.Time(0).Add(spec.Step); at < spec.Horizon; at = at.Add(spec.Step) {
		// Apply scheduled recoveries first so the down-set is current.
		for label, until := range down {
			if until > 0 && until <= at {
				delete(down, label)
			}
		}
		if !rng.Bool(spec.Rate) {
			continue
		}
		if rng.Float64() < spec.RevokeFraction {
			// Revoke a random interval on a random live node.
			up := liveNodes(nodes, down)
			if len(up) == 0 {
				continue
			}
			label := up[rng.IntN(len(up))]
			start := at.Add(spec.Step / 2)
			length := spec.Step * sim.Duration(1+rng.IntN(4))
			events = append(events, Event{
				At: at, Kind: Revoke, Node: label,
				Span: sim.Interval{Start: start, End: start.Add(length)},
			})
			continue
		}
		up := liveNodes(nodes, down)
		if len(up) <= 1 {
			continue // never take the last node down
		}
		label := up[rng.IntN(len(up))]
		events = append(events, Event{At: at, Kind: Fail, Node: label})
		if spec.Outage > 0 {
			recovery := at.Add(spec.Outage)
			events = append(events, Event{At: recovery, Kind: Recover, Node: label})
			down[label] = recovery
		} else {
			down[label] = 0
		}
	}
	return NewPlan(events...)
}

// liveNodes returns the labels not currently down, in pool order.
func liveNodes(nodes []*resource.Node, down map[string]sim.Time) []string {
	var up []string
	for _, n := range nodes {
		if _, d := down[n.Label()]; !d {
			up = append(up, n.Label())
		}
	}
	return up
}
