package fault

import (
	"fmt"
	"sort"
	"strings"

	"ecosched/internal/gridsim"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// incomeEpsilon absorbs float64 rounding in the per-domain income ledger:
// a domain's balance is "negative" only below this, not at -0.0000000001
// left over from credit/refund round trips.
const incomeEpsilon = 1e-6

// resKey identifies a reservation exactly: a cancelled reservation
// re-appearing under the same (job, node, span) triple without a scheduler
// commit is a resurrection.
type resKey struct {
	name string
	node resource.NodeID
	span sim.Interval
}

func (k resKey) String() string {
	return fmt.Sprintf("%s@node%d:%v", k.name, k.node, k.span)
}

// Target is the scheduler surface the auditor reads: the grid plus the
// job, drop, and cancellation ledgers. *metasched.Scheduler satisfies it
// directly; tests wrap one and override a single accessor to prove each
// conservation check trips on exactly the ledger it guards.
type Target interface {
	Grid() *gridsim.Grid
	SubmittedCount() int
	QueueLength() int
	PlacedCount() int
	PlacedJobs() []string
	DroppedJobs() map[string]string
	RetryStats() metasched.RetryStats
}

// Audit checks the metascheduler's global safety invariants after every
// injected fault event and every scheduling iteration:
//
//  1. no node holds overlapping bookings (double-booking);
//  2. no administrative domain's income ledger is negative — cancellations
//     refund at most what was actually charged;
//  3. job conservation: every job ever submitted is exactly one of queued,
//     placed, or terminally dropped;
//  4. cancellation conservation: every environment cancellation resolved
//     into exactly one of re-queue or terminal drop;
//  5. a failed node holds no live VO reservation;
//  6. no cancelled reservation is resurrected — in particular, a node
//     recovery adds no bookings at all;
//  7. the grid's live vacant-slot store, when active, is byte-identical to
//     the full rebuild from the bookings (gridsim.VacantStoreCoherent).
//
// Violations accumulate; Check returns an error describing the new ones so
// a driver can fail fast while tests can also inspect the full list.
type Audit struct {
	sched Target
	grid  *gridsim.Grid
	// cancelled maps reservations removed by fault events to the event
	// that removed them; cleared per job when the scheduler legitimately
	// re-places it.
	cancelled map[resKey]string
	// snapshot is the VO reservation set captured by BeginEvent.
	snapshot map[resKey]bool
	// violations is the append-only log of every invariant breach seen.
	violations []string
}

// NewAudit builds an auditor over the scheduler and its grid.
func NewAudit(s Target) *Audit {
	return &Audit{
		sched:     s,
		grid:      s.Grid(),
		cancelled: make(map[resKey]string),
	}
}

// Violations returns every invariant breach recorded so far.
func (a *Audit) Violations() []string {
	out := make([]string, len(a.violations))
	copy(out, a.violations)
	return out
}

// CancelledKeys returns the auditor's outstanding cancelled-reservation
// records — the (job, node, span) keys removed by fault events whose jobs
// have not been legitimately re-placed — in sorted order. The model checker
// folds them into its canonical state hash: two histories that agree on
// scheduler and grid state but disagree on which reservations the
// resurrection check still watches are different states.
func (a *Audit) CancelledKeys() []string {
	keys := make([]string, 0, len(a.cancelled))
	for k := range a.cancelled {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	return keys
}

// voReservations keys the grid's current VO reservations.
func (a *Audit) voReservations() map[resKey]bool {
	out := make(map[resKey]bool)
	for _, t := range a.grid.AllTasks() {
		if t.Local {
			continue
		}
		out[resKey{name: t.Name, node: t.Node, span: t.Span}] = true
	}
	return out
}

// BeginEvent snapshots the VO reservation set before a fault event applies.
func (a *Audit) BeginEvent() {
	a.snapshot = a.voReservations()
}

// EndEvent diffs the reservation set against the BeginEvent snapshot:
// removed reservations are recorded as cancelled by the event (feeding the
// resurrection check), and any reservation the event *added* is a violation
// — fault events only ever take capacity away, and a recovery in particular
// must re-join the node empty. It returns the cancelled keys in
// deterministic order for transcripts.
func (a *Audit) EndEvent(e Event) []string {
	after := a.voReservations()
	var removed []string
	for k := range a.snapshot {
		if !after[k] {
			a.cancelled[k] = e.String()
			removed = append(removed, k.String())
		}
	}
	for k := range after {
		if !a.snapshot[k] {
			a.violate("event %v added reservation %v: fault events must only remove capacity", e, k)
		}
	}
	a.snapshot = nil
	sort.Strings(removed)
	return removed
}

// JobRescheduled clears the job's cancelled-reservation records: the
// scheduler has legitimately re-placed it through a commit, so a future
// booking coinciding with an old span is not a resurrection.
func (a *Audit) JobRescheduled(name string) {
	for k := range a.cancelled {
		if k.name == name {
			delete(a.cancelled, k)
		}
	}
}

// violate records one invariant breach.
func (a *Audit) violate(format string, args ...any) {
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
}

// Check runs every invariant against the current scheduler and grid state.
// It returns an error describing the violations found by this call; all
// violations also accumulate in Violations.
func (a *Audit) Check() error {
	before := len(a.violations)
	a.checkBookings()
	a.checkIncome()
	a.checkConservation()
	a.checkFailedNodes()
	a.checkResurrection()
	a.checkVacancy()
	if fresh := a.violations[before:]; len(fresh) > 0 {
		return fmt.Errorf("fault: %d invariant violation(s): %s", len(fresh), strings.Join(fresh, "; "))
	}
	return nil
}

// checkBookings verifies every node's booking list is valid, start-sorted
// and overlap-free.
func (a *Audit) checkBookings() {
	for _, n := range a.grid.Pool().Nodes() {
		tasks := a.grid.Tasks(n.ID)
		for i, t := range tasks {
			if t.Span.Empty() || !t.Span.Valid() {
				a.violate("node %s: booking %s has empty or invalid span %v", n.Label(), t.Name, t.Span)
			}
			if i == 0 {
				continue
			}
			prev := tasks[i-1]
			if prev.Span.Start > t.Span.Start {
				a.violate("node %s: bookings out of order (%s at %v after %s at %v)",
					n.Label(), prev.Name, prev.Span.Start, t.Name, t.Span.Start)
			}
			if prev.Span.End > t.Span.Start {
				a.violate("node %s: double-booking — %s %v overlaps %s %v",
					n.Label(), prev.Name, prev.Span, t.Name, t.Span)
			}
		}
	}
}

// checkIncome verifies no domain's ledger went negative: refunds are
// bounded by what was actually charged.
func (a *Audit) checkIncome() {
	byDomain, _ := a.grid.OwnerIncome()
	domains := make([]string, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		if float64(byDomain[d]) < -incomeEpsilon {
			a.violate("domain %s income %v is negative: refunded more than was charged", d, byDomain[d])
		}
	}
}

// checkConservation verifies the job and cancellation ledgers balance.
func (a *Audit) checkConservation() {
	submitted := a.sched.SubmittedCount()
	queued := a.sched.QueueLength()
	placed := a.sched.PlacedCount()
	dropped := len(a.sched.DroppedJobs())
	if submitted != queued+placed+dropped {
		a.violate("job conservation broken: %d submitted != %d queued + %d placed + %d dropped",
			submitted, queued, placed, dropped)
	}
	st := a.sched.RetryStats()
	if st.Cancelled != st.Requeued+st.DroppedExhausted+st.DroppedDeadline {
		a.violate("cancellation conservation broken: %d cancelled != %d requeued + %d exhausted + %d deadline",
			st.Cancelled, st.Requeued, st.DroppedExhausted, st.DroppedDeadline)
	}
}

// checkFailedNodes verifies failed nodes hold no live VO reservation: the
// failure cancelled everything unfinished, and no new commit may land on a
// node publishing no vacancy.
func (a *Audit) checkFailedNodes() {
	now := a.grid.Now()
	for _, id := range a.grid.FailedNodes() {
		for _, t := range a.grid.Tasks(id) {
			if !t.Local && t.Span.End > now {
				a.violate("failed node %s holds live reservation %s %v",
					a.grid.Pool().Node(id).Label(), t.Name, t.Span)
			}
		}
	}
}

// checkVacancy verifies the incrementally maintained vacant-slot store
// still equals the full rebuild from the bookings — slot for slot, including
// index invariants. A grid without an active store (oracle knob on, or no
// publication yet) passes trivially, so the check costs nothing on the
// rebuild path while pinning the live path after every fault event and
// iteration of the chaos soak and the model checker.
func (a *Audit) checkVacancy() {
	if err := a.grid.VacantStoreCoherent(); err != nil {
		a.violate("vacant store diverged from rebuild: %v", err)
	}
}

// CheckRecoveryCoherence verifies the recovery-coherence invariant against
// the journal-derived applied-plan ledger (durable recovery computes it from
// round and cancellation records): no applied plan is lost — every ledger
// entry is in the scheduler's placed set — and no unlogged booking is
// resurrected — every placed job and every live VO reservation traces back
// to a journaled applied plan. Violations accumulate like every other check.
func (a *Audit) CheckRecoveryCoherence(appliedLive []string) error {
	before := len(a.violations)
	ledger := make(map[string]bool, len(appliedLive))
	for _, name := range appliedLive {
		ledger[name] = true
	}
	placed := make(map[string]bool)
	for _, name := range a.sched.PlacedJobs() {
		placed[name] = true
		if !ledger[name] {
			a.violate("recovery coherence: placed job %s has no journaled applied plan", name)
		}
	}
	for _, name := range appliedLive {
		if !placed[name] {
			a.violate("recovery coherence: applied plan for %s lost — job is not in the placed set", name)
		}
	}
	now := a.grid.Now()
	for _, t := range a.grid.AllTasks() {
		if t.Local || t.Span.End <= now {
			continue
		}
		if !ledger[t.Name] {
			a.violate("recovery coherence: live reservation %s %v is not covered by any journaled applied plan",
				t.Name, t.Span)
		}
	}
	if fresh := a.violations[before:]; len(fresh) > 0 {
		return fmt.Errorf("fault: %d recovery-coherence violation(s): %s", len(fresh), strings.Join(fresh, "; "))
	}
	return nil
}

// checkResurrection verifies no reservation cancelled by a fault event is
// booked again without the scheduler having re-placed its job.
func (a *Audit) checkResurrection() {
	live := a.voReservations()
	keys := make([]resKey, 0, len(a.cancelled))
	for k := range a.cancelled {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		if live[k] {
			a.violate("reservation %v cancelled by %s was resurrected", k, a.cancelled[k])
		}
	}
}
