package fault_test

import (
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/fault"
	"ecosched/internal/metasched"
)

// TestServiceSessionMatchesBatch pins the service-mode session driver to the
// batch one: the same seeded scenario and fault plan, run once through
// fault.NewSession (inject → RunIteration) and once through
// fault.NewServiceSession (inject via the service handlers → Tick rounds),
// must produce byte-identical transcripts with the same number of applied
// events and zero audit violations. This is the fault-package view of the
// metasched service differential.
func TestServiceSessionMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		batchSched := chaosScheduler(t, seed, alloc.AMP{}, metasched.MinimizeTime, 1, false, false, false)
		plan := chaosPlan(t, batchSched.Grid().Pool(), seed, 0.6)
		var batch strings.Builder
		sess, err := fault.NewSession(batchSched, plan, &batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Run(chaosIterations); err != nil {
			t.Fatalf("seed %d batch: %v", seed, err)
		}

		svcSched := chaosScheduler(t, seed, alloc.AMP{}, metasched.MinimizeTime, 1, false, false, false)
		svc, err := metasched.NewService(svcSched, metasched.ServiceConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var service strings.Builder
		svcSess, err := fault.NewServiceSession(svc, plan, &service)
		if err != nil {
			t.Fatal(err)
		}
		if err := svcSess.Run(chaosIterations); err != nil {
			t.Fatalf("seed %d service: %v", seed, err)
		}

		if batch.String() != service.String() {
			t.Fatalf("seed %d: service transcript diverged from batch:\n--- batch ---\n%s\n--- service ---\n%s",
				seed, batch.String(), service.String())
		}
		if svcSess.Applied() != sess.Applied() {
			t.Fatalf("seed %d: Applied = %d (service) vs %d (batch)", seed, svcSess.Applied(), sess.Applied())
		}
		if n := len(svcSess.Audit().Violations()); n != 0 {
			t.Fatalf("seed %d: %d audit violations in service mode", seed, n)
		}
	}
	if _, err := fault.NewServiceSession(nil, nil, nil); err == nil {
		t.Fatal("NewServiceSession(nil) accepted a nil service")
	}
}
