package fault

import (
	"fmt"
	"io"
	"sort"

	"ecosched/internal/metasched"
	"ecosched/internal/sim"
)

// ServiceDriver is the continuous-service surface a session drives in service
// mode: the event handlers, the round runner, and the evaluation-queue depth
// the drain loop watches. *metasched.Service satisfies it directly, and so
// does the durable wrapper (internal/durable.Service), which journals every
// one of these calls — the crash-storm soak runs a whole chaos session
// through it unmodified.
type ServiceDriver interface {
	Scheduler() *metasched.Scheduler
	HandleNodeFailure(nodeLabel string) ([]string, error)
	HandleNodeRecovery(nodeLabel string) error
	HandleRevocation(nodeLabel string, span sim.Interval) ([]string, error)
	Tick() (*metasched.IterationReport, error)
	QueueDepth() int
}

// Session drives a metascheduler through a fault plan: before every
// scheduling iteration it applies the plan events whose time has come (in
// plan order), re-queuing or dropping the affected jobs through the
// scheduler's retry policy, and it runs the Audit invariant checker after
// every injected event and every iteration, failing fast on the first
// violation.
//
// The whole run is written to the transcript writer in a canonical textual
// form. Because every input is deterministic — the plan is a sorted event
// list, the scheduler draws only from seeded RNGs — two sessions with the
// same seed and plan must produce byte-identical transcripts whatever the
// engine toggles (DP engine, slot index, search parallelism); the chaos
// soak pins exactly that. With no plan the session writes precisely what
// WriteIterationReport + WriteSummary produce for an undisturbed run, so
// the fault layer is provably neutral when idle.
type Session struct {
	sched *metasched.Scheduler
	plan  *Plan
	audit *Audit
	w     io.Writer
	// svc, when non-nil, switches the session to service mode: events route
	// through the driver's handlers (enqueueing evaluations) and each
	// iteration is a service round (Tick) instead of RunIteration. Because
	// a round is exactly the batch step sequence with evaluation-queue
	// bookkeeping around it, service-mode transcripts are byte-identical to
	// batch-mode ones — the service chaos differential pins this.
	svc ServiceDriver
	// next indexes the first plan event not yet applied.
	next int
}

// NewSession binds a scheduler to a fault plan (nil means no faults) and a
// transcript writer. The plan is validated against the grid's node pool.
func NewSession(s *metasched.Scheduler, plan *Plan, w io.Writer) (*Session, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil scheduler")
	}
	if w == nil {
		w = io.Discard
	}
	if plan != nil {
		if err := plan.Validate(s.Grid().Pool()); err != nil {
			return nil, err
		}
	}
	return &Session{sched: s, plan: plan, audit: NewAudit(s), w: w}, nil
}

// NewServiceSession binds a continuous-service metascheduler to a fault plan:
// the session drives the service's event loop — plan events become service
// events, iterations become evaluation rounds — under the same audit and
// transcript contract as the batch session.
func NewServiceSession(svc *metasched.Service, plan *Plan, w io.Writer) (*Session, error) {
	if svc == nil {
		return nil, fmt.Errorf("fault: nil service")
	}
	return NewDriverSession(svc, plan, w)
}

// NewDriverSession binds any ServiceDriver — a plain service or the durable
// journaling wrapper — to a fault plan under the same audit and transcript
// contract. Sessions over a plain service and over its durable wrapper
// produce byte-identical transcripts; the crash-storm soak pins that.
func NewDriverSession(d ServiceDriver, plan *Plan, w io.Writer) (*Session, error) {
	if d == nil {
		return nil, fmt.Errorf("fault: nil service driver")
	}
	s, err := NewSession(d.Scheduler(), plan, w)
	if err != nil {
		return nil, err
	}
	s.svc = d
	return s, nil
}

// Audit returns the session's invariant checker.
func (s *Session) Audit() *Audit { return s.audit }

// Applied returns how many plan events have fired so far.
func (s *Session) Applied() int { return s.next }

// Run executes the given number of scheduling iterations under the fault
// plan. It stops with an error on the first invariant violation or
// scheduler failure; a normal return means the audit stayed clean
// throughout.
func (s *Session) Run(iterations int) error {
	for i := 0; i < iterations; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	WriteSummary(s.w, s.sched, s.next, s.plan.Len())
	return nil
}

// Resume fast-forwards the plan cursor past the first applied events without
// re-applying them: they already fired in a previous session whose committed
// state this session's scheduler was recovered from. Only a fresh session can
// resume. The crash-storm soak uses it to stitch a recovered continuation
// onto a crashed prefix and still assemble Run's exact transcript.
func (s *Session) Resume(applied int) error {
	if applied < 0 || applied > s.plan.Len() {
		return fmt.Errorf("fault: resume at event %d of %d", applied, s.plan.Len())
	}
	if s.next != 0 {
		return fmt.Errorf("fault: resume after %d events already applied", s.next)
	}
	s.next = applied
	return nil
}

// Step runs one audited round: inject due events, run the iteration, write
// its transcript, clear re-placed jobs from the resurrection watch, check the
// invariants. Run(n) is exactly n Steps plus the summary footer; crash-storm
// drivers call Step directly so they can crash and resume between rounds and
// still assemble a byte-identical transcript.
func (s *Session) Step() error {
	if err := s.injectDue(); err != nil {
		return err
	}
	rep, err := s.runIteration()
	if err != nil {
		return err
	}
	WriteIterationReport(s.w, rep)
	for _, p := range rep.Placed {
		s.audit.JobRescheduled(p.Job.Name)
	}
	if err := s.audit.Check(); err != nil {
		return fmt.Errorf("fault: after iteration %d: %w", rep.Iteration, err)
	}
	return nil
}

// Pending reports the in-flight work a finished Run leaves behind: plan
// events not yet applied plus, in service mode, evaluations still waiting in
// the service queue — including backoff-gated requeues whose retry time lies
// beyond the last iteration. Run(n) stops after exactly n rounds whatever
// remains; before this accessor existed that tail was dropped silently.
func (s *Session) Pending() int {
	n := s.plan.Len() - s.next
	if s.svc != nil {
		n += s.svc.QueueDepth()
	}
	return n
}

// Drain makes the end-of-plan tail explicit: it keeps running audited rounds
// until Pending reaches zero — every plan event applied, every queued
// evaluation (backoff requeues included) consumed by a round — or the round
// budget is exhausted, which is an error naming the work still in flight.
// Each drain round advances the clock exactly like a Run round, so gated
// requeues come due; the transcript gets the same iteration lines followed by
// a drain footer. It returns the number of rounds run.
func (s *Session) Drain(maxRounds int) (int, error) {
	ran := 0
	for s.Pending() > 0 {
		if ran >= maxRounds {
			return ran, fmt.Errorf("fault: drain: %d item(s) still pending after %d round(s)", s.Pending(), maxRounds)
		}
		if err := s.Step(); err != nil {
			return ran, err
		}
		ran++
	}
	fmt.Fprintf(s.w, "drained rounds=%d events=%d/%d\n", ran, s.next, s.plan.Len())
	return ran, nil
}

// runIteration runs one scheduling step: a service round in service mode, a
// batch iteration otherwise.
func (s *Session) runIteration() (*metasched.IterationReport, error) {
	if s.svc != nil {
		return s.svc.Tick()
	}
	return s.sched.RunIteration()
}

// injectDue applies every not-yet-applied plan event whose time has been
// reached, in plan order.
func (s *Session) injectDue() error {
	now := s.sched.Grid().Now()
	for s.next < s.plan.Len() {
		e := s.plan.Events[s.next]
		if e.At > now {
			return nil
		}
		s.next++
		if err := s.apply(e); err != nil {
			return err
		}
	}
	return nil
}

// apply injects one event through the matching scheduler hook, records the
// cancelled reservations with the audit, writes the transcript line, and
// checks the invariants.
func (s *Session) apply(e Event) error {
	s.audit.BeginEvent()
	var requeued []string
	var err error
	switch {
	case s.svc != nil:
		switch e.Kind {
		case Fail:
			requeued, err = s.svc.HandleNodeFailure(e.Node)
		case Recover:
			err = s.svc.HandleNodeRecovery(e.Node)
		case Revoke:
			requeued, err = s.svc.HandleRevocation(e.Node, e.Span)
		default:
			err = fmt.Errorf("unknown event kind %d", int(e.Kind))
		}
	default:
		switch e.Kind {
		case Fail:
			requeued, err = s.sched.HandleNodeFailure(e.Node)
		case Recover:
			err = s.sched.HandleNodeRecovery(e.Node)
		case Revoke:
			requeued, err = s.sched.HandleRevocation(e.Node, e.Span)
		default:
			err = fmt.Errorf("unknown event kind %d", int(e.Kind))
		}
	}
	if err != nil {
		return fmt.Errorf("fault: applying %v: %w", e, err)
	}
	cancelled := s.audit.EndEvent(e)
	fmt.Fprintf(s.w, "fault %v cancelled=%d requeued=%v drops=%d\n",
		e, len(cancelled), requeued, len(s.sched.DroppedJobs()))
	if err := s.audit.Check(); err != nil {
		return fmt.Errorf("fault: after event %v: %w", e, err)
	}
	return nil
}

// WriteIterationReport writes one iteration's canonical transcript lines.
// Fault sessions and the undisturbed baseline runs of the neutrality tests
// share this function, so "empty plan" and "no fault layer at all" can be
// compared byte for byte.
func WriteIterationReport(w io.Writer, rep *metasched.IterationReport) {
	fmt.Fprintf(w, "it=%d now=%v batch=%d alts=%d planT=%v planC=%v pf=%.3f\n",
		rep.Iteration, rep.Now, rep.BatchSize, rep.Alternatives, rep.PlanTime, rep.PlanCost, rep.PriceFactor)
	for _, p := range rep.Placed {
		fmt.Fprintf(w, "  placed %s -> %v wait=%v\n", p.Job.Name, p.Window.Window, p.WaitTime)
	}
	fmt.Fprintf(w, "  postponed=%v dropped=%v\n", rep.Postponed, rep.Dropped)
}

// WriteSummary writes the end-of-session canonical transcript footer: event
// application progress, the job ledger, retry-policy bookkeeping, terminal
// drops with reasons, and the per-domain owner income.
func WriteSummary(w io.Writer, s *metasched.Scheduler, applied, planned int) {
	fmt.Fprintf(w, "events=%d/%d queue=%d placed=%d\n", applied, planned, s.QueueLength(), s.PlacedCount())
	st := s.RetryStats()
	fmt.Fprintf(w, "retry cancelled=%d requeued=%d relaxed=%d exhausted=%d deadline=%d\n",
		st.Cancelled, st.Requeued, st.Relaxations, st.DroppedExhausted, st.DroppedDeadline)
	dropped := s.DroppedJobs()
	names := make([]string, 0, len(dropped))
	for name := range dropped {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "dropped %s reason=%s\n", name, dropped[name])
	}
	byDomain, total := s.Grid().OwnerIncome()
	domains := make([]string, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Fprintf(w, "income %s=%v\n", d, byDomain[d])
	}
	fmt.Fprintf(w, "income total=%v\n", total)
}
