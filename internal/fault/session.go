package fault

import (
	"fmt"
	"io"
	"sort"

	"ecosched/internal/metasched"
)

// Session drives a metascheduler through a fault plan: before every
// scheduling iteration it applies the plan events whose time has come (in
// plan order), re-queuing or dropping the affected jobs through the
// scheduler's retry policy, and it runs the Audit invariant checker after
// every injected event and every iteration, failing fast on the first
// violation.
//
// The whole run is written to the transcript writer in a canonical textual
// form. Because every input is deterministic — the plan is a sorted event
// list, the scheduler draws only from seeded RNGs — two sessions with the
// same seed and plan must produce byte-identical transcripts whatever the
// engine toggles (DP engine, slot index, search parallelism); the chaos
// soak pins exactly that. With no plan the session writes precisely what
// WriteIterationReport + WriteSummary produce for an undisturbed run, so
// the fault layer is provably neutral when idle.
type Session struct {
	sched *metasched.Scheduler
	plan  *Plan
	audit *Audit
	w     io.Writer
	// svc, when non-nil, switches the session to service mode: events route
	// through the service's handlers (enqueueing evaluations) and each
	// iteration is a service round (Tick) instead of RunIteration. Because
	// a round is exactly the batch step sequence with evaluation-queue
	// bookkeeping around it, service-mode transcripts are byte-identical to
	// batch-mode ones — the service chaos differential pins this.
	svc *metasched.Service
	// next indexes the first plan event not yet applied.
	next int
}

// NewSession binds a scheduler to a fault plan (nil means no faults) and a
// transcript writer. The plan is validated against the grid's node pool.
func NewSession(s *metasched.Scheduler, plan *Plan, w io.Writer) (*Session, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil scheduler")
	}
	if w == nil {
		w = io.Discard
	}
	if plan != nil {
		if err := plan.Validate(s.Grid().Pool()); err != nil {
			return nil, err
		}
	}
	return &Session{sched: s, plan: plan, audit: NewAudit(s), w: w}, nil
}

// NewServiceSession binds a continuous-service metascheduler to a fault plan:
// the session drives the service's event loop — plan events become service
// events, iterations become evaluation rounds — under the same audit and
// transcript contract as the batch session.
func NewServiceSession(svc *metasched.Service, plan *Plan, w io.Writer) (*Session, error) {
	if svc == nil {
		return nil, fmt.Errorf("fault: nil service")
	}
	s, err := NewSession(svc.Scheduler(), plan, w)
	if err != nil {
		return nil, err
	}
	s.svc = svc
	return s, nil
}

// Audit returns the session's invariant checker.
func (s *Session) Audit() *Audit { return s.audit }

// Applied returns how many plan events have fired so far.
func (s *Session) Applied() int { return s.next }

// Run executes the given number of scheduling iterations under the fault
// plan. It stops with an error on the first invariant violation or
// scheduler failure; a normal return means the audit stayed clean
// throughout.
func (s *Session) Run(iterations int) error {
	for i := 0; i < iterations; i++ {
		if err := s.injectDue(); err != nil {
			return err
		}
		rep, err := s.runIteration()
		if err != nil {
			return err
		}
		WriteIterationReport(s.w, rep)
		for _, p := range rep.Placed {
			s.audit.JobRescheduled(p.Job.Name)
		}
		if err := s.audit.Check(); err != nil {
			return fmt.Errorf("fault: after iteration %d: %w", rep.Iteration, err)
		}
	}
	WriteSummary(s.w, s.sched, s.next, s.plan.Len())
	return nil
}

// runIteration runs one scheduling step: a service round in service mode, a
// batch iteration otherwise.
func (s *Session) runIteration() (*metasched.IterationReport, error) {
	if s.svc != nil {
		return s.svc.Tick()
	}
	return s.sched.RunIteration()
}

// injectDue applies every not-yet-applied plan event whose time has been
// reached, in plan order.
func (s *Session) injectDue() error {
	now := s.sched.Grid().Now()
	for s.next < s.plan.Len() {
		e := s.plan.Events[s.next]
		if e.At > now {
			return nil
		}
		s.next++
		if err := s.apply(e); err != nil {
			return err
		}
	}
	return nil
}

// apply injects one event through the matching scheduler hook, records the
// cancelled reservations with the audit, writes the transcript line, and
// checks the invariants.
func (s *Session) apply(e Event) error {
	s.audit.BeginEvent()
	var requeued []string
	var err error
	switch {
	case s.svc != nil:
		switch e.Kind {
		case Fail:
			requeued, err = s.svc.HandleNodeFailure(e.Node)
		case Recover:
			err = s.svc.HandleNodeRecovery(e.Node)
		case Revoke:
			requeued, err = s.svc.HandleRevocation(e.Node, e.Span)
		default:
			err = fmt.Errorf("unknown event kind %d", int(e.Kind))
		}
	default:
		switch e.Kind {
		case Fail:
			requeued, err = s.sched.HandleNodeFailure(e.Node)
		case Recover:
			err = s.sched.HandleNodeRecovery(e.Node)
		case Revoke:
			requeued, err = s.sched.HandleRevocation(e.Node, e.Span)
		default:
			err = fmt.Errorf("unknown event kind %d", int(e.Kind))
		}
	}
	if err != nil {
		return fmt.Errorf("fault: applying %v: %w", e, err)
	}
	cancelled := s.audit.EndEvent(e)
	fmt.Fprintf(s.w, "fault %v cancelled=%d requeued=%v drops=%d\n",
		e, len(cancelled), requeued, len(s.sched.DroppedJobs()))
	if err := s.audit.Check(); err != nil {
		return fmt.Errorf("fault: after event %v: %w", e, err)
	}
	return nil
}

// WriteIterationReport writes one iteration's canonical transcript lines.
// Fault sessions and the undisturbed baseline runs of the neutrality tests
// share this function, so "empty plan" and "no fault layer at all" can be
// compared byte for byte.
func WriteIterationReport(w io.Writer, rep *metasched.IterationReport) {
	fmt.Fprintf(w, "it=%d now=%v batch=%d alts=%d planT=%v planC=%v pf=%.3f\n",
		rep.Iteration, rep.Now, rep.BatchSize, rep.Alternatives, rep.PlanTime, rep.PlanCost, rep.PriceFactor)
	for _, p := range rep.Placed {
		fmt.Fprintf(w, "  placed %s -> %v wait=%v\n", p.Job.Name, p.Window.Window, p.WaitTime)
	}
	fmt.Fprintf(w, "  postponed=%v dropped=%v\n", rep.Postponed, rep.Dropped)
}

// WriteSummary writes the end-of-session canonical transcript footer: event
// application progress, the job ledger, retry-policy bookkeeping, terminal
// drops with reasons, and the per-domain owner income.
func WriteSummary(w io.Writer, s *metasched.Scheduler, applied, planned int) {
	fmt.Fprintf(w, "events=%d/%d queue=%d placed=%d\n", applied, planned, s.QueueLength(), s.PlacedCount())
	st := s.RetryStats()
	fmt.Fprintf(w, "retry cancelled=%d requeued=%d relaxed=%d exhausted=%d deadline=%d\n",
		st.Cancelled, st.Requeued, st.Relaxations, st.DroppedExhausted, st.DroppedDeadline)
	dropped := s.DroppedJobs()
	names := make([]string, 0, len(dropped))
	for name := range dropped {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "dropped %s reason=%s\n", name, dropped[name])
	}
	byDomain, total := s.Grid().OwnerIncome()
	domains := make([]string, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Fprintf(w, "income %s=%v\n", d, byDomain[d])
	}
	fmt.Fprintf(w, "income total=%v\n", total)
}
