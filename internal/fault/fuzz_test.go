package fault_test

import (
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/sim"
)

// FuzzFaultPlan fuzzes the plan DSL end to end: any string the parser
// accepts must render back to a stable canonical form (String/ParsePlan
// round-trip), and — when its targets exist in the pool — driving a full
// scheduler session with it must complete with zero audit violations, no
// matter how adversarial the event sequence (double failures, recoveries of
// healthy nodes, overlapping revocations, events at extreme times).
func FuzzFaultPlan(f *testing.F) {
	f.Add("fail@300:n3;recover@600:n3;revoke@450:n2:500-700")
	f.Add("fail@0:n1;fail@0:n1;recover@0:n1;recover@0:n1")
	f.Add("revoke@100:n1:0-9000000000000000000;revoke@100:n1:0-9000000000000000000")
	f.Add("fail@150:n1;fail@150:n2;fail@150:n3;recover@300:n2")
	f.Add("revoke@1:n4:2-3; fail@2:n4 ;;recover@9223372036854775807:n4")
	f.Fuzz(func(t *testing.T, text string) {
		plan, err := fault.ParsePlan(text)
		if err != nil {
			return // malformed input is the parser's to reject, not a bug
		}
		canon := plan.String()
		back, err := fault.ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if again := back.String(); again != canon {
			t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", canon, again)
		}

		sched := fuzzScheduler(t)
		if plan.Validate(sched.Grid().Pool()) != nil {
			return // targets outside the pool; nothing to inject
		}
		var b strings.Builder
		sess, err := fault.NewSession(sched, plan, &b)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Run(5); err != nil {
			t.Fatalf("plan %q: %v\ntranscript:\n%s", canon, err, b.String())
		}
		if v := sess.Audit().Violations(); len(v) > 0 {
			t.Fatalf("plan %q: audit violations %v", canon, v)
		}
	})
}

// fuzzScheduler builds a small fixed scenario (4 nodes n1..n4, 3 jobs, retry
// policy with ladder and deadline) for the fuzzer to batter with plans.
func fuzzScheduler(t *testing.T) *metasched.Scheduler {
	t.Helper()
	grid, err := gridsim.New(testPool(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := metasched.New(metasched.Config{
		Algorithm:        alloc.ALP{},
		Horizon:          800,
		Step:             100,
		MaxPostponements: 4,
		Retry: &metasched.RetryPolicy{
			MaxAttempts:      1,
			BackoffBase:      50,
			BackoffFactor:    2,
			PriceRelaxFactor: 1.5,
			MaxRelaxations:   1,
			JobDeadline:      600,
		},
	}, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		err := sched.Submit(&job.Job{
			Name: name,
			Request: job.ResourceRequest{
				Nodes:          1 + i%2,
				Time:           sim.Duration(60 + 20*i),
				MinPerformance: 1,
				MaxPrice:       40,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return sched
}
