package fault_test

import (
	"fmt"
	"io"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/fault"
	"ecosched/internal/metasched"
)

// BenchmarkFaultRate measures full fault-session throughput at increasing
// fault pressure: 0% (idle fault layer — its overhead floor), 5% and 20%
// per-iteration event rates. Each op is one complete 10-iteration seeded
// session including plan compilation, event injection, retry re-queues and
// the audit after every event and iteration; placed/op reports how many of
// the 8 jobs still land under that pressure. CI publishes the results as
// the BENCH_fault.json artifact.
func BenchmarkFaultRate(b *testing.B) {
	for _, rate := range []float64{0, 0.05, 0.20} {
		b.Run(fmt.Sprintf("rate=%d%%", int(rate*100)), func(b *testing.B) {
			placed := 0
			for i := 0; i < b.N; i++ {
				seed := uint64(i%50 + 1)
				sched := chaosScheduler(b, seed, alloc.ALP{}, metasched.MinimizeTime, 1, false, false, false)
				plan := chaosPlan(b, sched.Grid().Pool(), seed, rate)
				sess, err := fault.NewSession(sched, plan, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if err := sess.Run(chaosIterations); err != nil {
					b.Fatal(err)
				}
				placed += sched.PlacedCount()
			}
			b.ReportMetric(float64(placed)/float64(b.N), "placed/op")
		})
	}
}
