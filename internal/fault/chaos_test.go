package fault_test

import (
	"fmt"
	"strings"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/fault"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
)

// chaosIterations is the length of every soak session; with chaosStep it
// fixes the horizon the fault plans are generated over.
const (
	chaosIterations = 10
	chaosStep       = sim.Duration(150)
)

// chaosScheduler builds the soak's seeded scenario: a 12-node grid with
// owner-local load, a retry policy with backoff, degradation ladder and
// deadline, and 8 submitted jobs — the same scenario family as the
// metasched differential suite, plus the retry policy.
func chaosScheduler(t testing.TB, seed uint64, algo alloc.Algorithm, policy metasched.Policy, parallelism int, useDense, useLinear, rebuild bool) *metasched.Scheduler {
	t.Helper()
	rng := sim.NewRNG(seed)
	pricing := resource.PaperPricing()
	nodes := make([]*resource.Node, 0, 12)
	for i := 0; i < 12; i++ {
		perf := rng.FloatBetween(1, 3)
		nodes = append(nodes, &resource.Node{
			Name:        fmt.Sprintf("n%d", i+1),
			Performance: perf,
			Price:       pricing.Sample(rng, perf),
			Domain:      fmt.Sprintf("d%d", i%3),
		})
	}
	pool, err := resource.NewPool(nodes)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gridsim.New(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Populate(gridsim.LocalLoad{MeanGap: 150, DurMin: 30, DurMax: 120}, 0, 4000, rng.Split()); err != nil {
		t.Fatal(err)
	}
	cfg := metasched.Config{
		Algorithm:        algo,
		Policy:           policy,
		Horizon:          1200,
		Step:             chaosStep,
		MaxBatch:         4,
		MaxPostponements: 3,
		Parallelism:      parallelism,
		UseDenseDP:       useDense,
		RebuildVacant:    rebuild,
		Retry: &metasched.RetryPolicy{
			MaxAttempts:      2,
			BackoffBase:      40,
			BackoffFactor:    2,
			BackoffMax:       300,
			JitterFrac:       0.25,
			JitterSeed:       seed,
			PriceRelaxFactor: 1.3,
			MaxRelaxations:   2,
			JobDeadline:      1400,
		},
	}
	cfg.Search.UseLinearScan = useLinear
	sched, err := metasched.New(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		j := &job.Job{
			Name:     fmt.Sprintf("job%d", i+1),
			Priority: i + 1,
			Request: job.ResourceRequest{
				Nodes:          rng.IntBetween(1, 3),
				Time:           sim.Duration(rng.IntBetween(50, 150)),
				MinPerformance: rng.FloatBetween(1, 1.8),
				MaxPrice:       pricing.BasePrice(1.5) * sim.Money(rng.FloatBetween(1.0, 1.4)),
			},
		}
		if err := sched.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	return sched
}

// chaosPlan compiles the seed's fault schedule: crashes with recovery,
// revocations, at the given per-iteration rate.
func chaosPlan(t testing.TB, pool *resource.Pool, seed uint64, rate float64) *fault.Plan {
	t.Helper()
	plan, err := fault.RandomPlan(pool, fault.RandomSpec{
		Seed:           seed ^ 0xc4a5a511,
		Horizon:        sim.Time(0).Add(chaosStep * sim.Duration(chaosIterations)),
		Step:           chaosStep,
		Rate:           rate,
		RevokeFraction: 0.4,
		Outage:         2 * chaosStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// chaosTranscript plays one full fault session and returns its canonical
// transcript, failing the test on any scheduler error or audit violation.
func chaosTranscript(t testing.TB, seed uint64, algo alloc.Algorithm, policy metasched.Policy, parallelism int, useDense, useLinear, rebuild bool) string {
	t.Helper()
	sched := chaosScheduler(t, seed, algo, policy, parallelism, useDense, useLinear, rebuild)
	plan := chaosPlan(t, sched.Grid().Pool(), seed, 0.6)
	var b strings.Builder
	sess, err := fault.NewSession(sched, plan, &b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(chaosIterations); err != nil {
		t.Fatalf("seed %d: %v\ntranscript so far:\n%s", seed, err, b.String())
	}
	if v := sess.Audit().Violations(); len(v) > 0 {
		t.Fatalf("seed %d: %d audit violations: %v", seed, len(v), v)
	}
	return b.String()
}

// TestChaosSoak is the invariant-checked chaos soak: 50 seeded sessions
// (10 under -short) through both algorithms, each injecting a dense random
// fault schedule — node crashes, recoveries, slot revocations — with the
// audit running after every event and iteration. Per seed and algorithm the
// transcript must be byte-identical across every engine toggle: dense
// versus frontier DP, linear versus indexed slot scan, sequential versus
// parallel search, live vacant store versus full rebuild, and everything
// flipped together. The base sessions run on the live store with the audit's
// checkVacancy comparing it against the rebuild after every event and
// iteration, so this is the 50-seed byte-identity proof for the store.
func TestChaosSoak(t *testing.T) {
	seeds := uint64(50)
	if testing.Short() {
		seeds = 10
	}
	algos := []struct {
		name string
		algo alloc.Algorithm
	}{
		{"ALP", alloc.ALP{}},
		{"AMP", alloc.AMP{}},
	}
	variants := []struct {
		name        string
		parallelism int
		dense       bool
		linear      bool
		rebuild     bool
	}{
		{"dense", 1, true, false, false},
		{"linear", 1, false, true, false},
		{"parallel", 4, false, false, false},
		{"rebuild", 1, false, false, true},
		{"dense+linear+parallel+rebuild", 4, true, true, true},
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		policy := metasched.MinimizeTime
		if seed%2 == 0 {
			policy = metasched.MinimizeCost
		}
		for _, a := range algos {
			base := chaosTranscript(t, seed, a.algo, policy, 1, false, false, false)
			if !strings.Contains(base, "fault ") {
				t.Fatalf("seed %d %s: chaos session injected no faults — the soak is not soaking", seed, a.name)
			}
			for _, v := range variants {
				got := chaosTranscript(t, seed, a.algo, policy, v.parallelism, v.dense, v.linear, v.rebuild)
				if got != base {
					t.Fatalf("seed %d %s %v: %s transcript diverged from base\n--- base ---\n%s\n--- %s ---\n%s",
						seed, a.name, policy, v.name, base, v.name, got)
				}
			}
		}
	}
}

// TestEmptyPlanNeutrality proves the fault layer is neutral when idle: a
// session with a nil plan, a session with a parsed empty plan, and a bare
// scheduler loop that never constructs a Session or Audit at all must
// produce byte-identical transcripts.
func TestEmptyPlanNeutrality(t *testing.T) {
	empty, err := fault.ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for _, algo := range []alloc.Algorithm{alloc.ALP{}, alloc.AMP{}} {
			// Baseline: plain scheduler loop, no fault layer.
			sched := chaosScheduler(t, seed, algo, metasched.MinimizeTime, 1, false, false, false)
			var base strings.Builder
			for i := 0; i < chaosIterations; i++ {
				rep, err := sched.RunIteration()
				if err != nil {
					t.Fatal(err)
				}
				fault.WriteIterationReport(&base, rep)
			}
			fault.WriteSummary(&base, sched, 0, 0)

			for _, plan := range []*fault.Plan{nil, empty} {
				sched := chaosScheduler(t, seed, algo, metasched.MinimizeTime, 1, false, false, false)
				var b strings.Builder
				sess, err := fault.NewSession(sched, plan, &b)
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.Run(chaosIterations); err != nil {
					t.Fatal(err)
				}
				if b.String() != base.String() {
					t.Fatalf("seed %d %s plan=%v: idle fault session diverged from bare run\n--- bare ---\n%s\n--- session ---\n%s",
						seed, algo.Name(), plan, base.String(), b.String())
				}
			}
		}
	}
}

// TestSessionRejectsUnknownNodes checks plan/pool validation at session
// construction.
func TestSessionRejectsUnknownNodes(t *testing.T) {
	sched := chaosScheduler(t, 1, alloc.ALP{}, metasched.MinimizeTime, 1, false, false, false)
	plan, err := fault.ParsePlan("fail@100:ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.NewSession(sched, plan, nil); err == nil {
		t.Fatal("session accepted a plan targeting a node outside the pool")
	}
}

// TestAuditCatchesViolations drives the auditor against hand-made broken
// states — a resurrection of a cancelled reservation, a fault event that
// adds capacity, and a live reservation on a failed node — to prove the
// chaos soak's "zero violations" claim has teeth.
func TestAuditCatchesViolations(t *testing.T) {
	build := func() (*metasched.Scheduler, *gridsim.Grid) {
		pool := testPool(t, 3)
		grid, err := gridsim.New(pool)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := metasched.New(metasched.Config{
			Algorithm: alloc.ALP{}, Horizon: 1000, Step: 100,
		}, grid)
		if err != nil {
			t.Fatal(err)
		}
		return sched, grid
	}

	t.Run("resurrection", func(t *testing.T) {
		sched, grid := build()
		a := fault.NewAudit(sched)
		task := gridsim.Task{Name: "victim", Node: 0, Span: sim.Interval{Start: 100, End: 200}}
		if err := grid.Book(task); err != nil {
			t.Fatal(err)
		}
		a.BeginEvent()
		grid.CancelJob("victim")
		ev := fault.Event{At: 0, Kind: fault.Revoke, Node: "n1", Span: sim.Interval{Start: 100, End: 200}}
		if got := a.EndEvent(ev); len(got) != 1 {
			t.Fatalf("EndEvent reported %v cancelled, want the one victim", got)
		}
		if err := a.Check(); err != nil {
			t.Fatalf("clean post-cancellation state flagged: %v", err)
		}
		// The reservation sneaks back without a scheduler commit.
		if err := grid.Book(task); err != nil {
			t.Fatal(err)
		}
		if err := a.Check(); err == nil {
			t.Fatal("resurrected reservation not flagged")
		}
		// A legitimate re-placement clears the record.
		a.JobRescheduled("victim")
		if err := a.Check(); err != nil {
			t.Fatalf("re-placed job still flagged: %v", err)
		}
	})

	t.Run("event-adds-capacity", func(t *testing.T) {
		sched, grid := build()
		a := fault.NewAudit(sched)
		a.BeginEvent()
		if err := grid.Book(gridsim.Task{Name: "smuggled", Node: 1, Span: sim.Interval{Start: 50, End: 90}}); err != nil {
			t.Fatal(err)
		}
		a.EndEvent(fault.Event{At: 0, Kind: fault.Recover, Node: "n2"})
		if len(a.Violations()) == 0 {
			t.Fatal("event that added a reservation not flagged")
		}
	})

	t.Run("live-reservation-on-failed-node", func(t *testing.T) {
		sched, grid := build()
		a := fault.NewAudit(sched)
		if _, err := grid.FailNode(0, 0); err != nil {
			t.Fatal(err)
		}
		// Book itself refuses failed nodes, so the zombie needs the
		// corruption hook — which is the point: only a bypassed write
		// path can reach this state, and the audit still flags it.
		grid.ForceBook(gridsim.Task{Name: "zombie", Node: 0, Span: sim.Interval{Start: 10, End: 500}})
		if err := a.Check(); err == nil {
			t.Fatal("live reservation on a failed node not flagged")
		}
	})
}
