package metrics

import "testing"

// The disabled-path benchmarks quantify the tentpole claim: a nil registry
// costs one predictable branch per instrument call — 0 allocs/op, sub-ns.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench", ExpBuckets(8, 2, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}

func BenchmarkSnapshotText(b *testing.B) {
	r := New()
	for i := 0; i < 32; i++ {
		r.Counter(benchCounterName("c", i)).Add(int64(i))
	}
	r.Histogram("h", ExpBuckets(1, 2, 10)).Observe(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot().Text()
	}
}

// benchCounterName builds distinct counter names for the snapshot benchmark.
func benchCounterName(prefix string, i int) string {
	return prefix + "/" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}
