// Package metrics is the deterministic observability layer of the scheduler:
// monotonic counters, gauges, and fixed-bucket histograms collected in a
// Registry that snapshots to a stable, sorted text/JSON encoding.
//
// Two properties set it apart from a general-purpose metrics library and are
// load-bearing for the rest of the repository:
//
//   - Determinism. Nothing in the package reads the wall clock, and a
//     snapshot iterates instruments in sorted name order, so two identical
//     seeded scheduler sessions produce byte-identical snapshots. Latencies
//     are recorded in sim-time ticks or deterministic work units (slots
//     scanned, frontier points kept) — never nanoseconds — which is what
//     makes snapshots golden-testable (see internal/metasched's determinism
//     suite and DESIGN.md §10).
//
//   - Zero cost when disabled. Every instrument method is safe on a nil
//     receiver and a nil *Registry hands out nil instruments, so hot paths
//     hold pre-resolved instrument pointers and pay a single predictable
//     branch — no allocation, no map lookup, no lock — when observability is
//     off. The contract is pinned by TestDisabledInstrumentsZeroAllocs and
//     the disabled-path benchmarks.
//
// Instruments are safe for concurrent use: all state is atomic, so the
// speculative parallel search and the experiment worker pools can increment
// shared counters. Totals are order-independent sums, which preserves the
// byte-identical-snapshot guarantee for any worker count.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is ready
// to use; a nil Counter discards every operation at zero cost.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta to the counter. Negative deltas are ignored — counters are
// monotone by contract.
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written instantaneous value. The zero value is ready to
// use; a nil Gauge discards every operation at zero cost.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by delta, which may be negative — the natural
// operation for level gauges (queue depths, in-flight counts) maintained by
// paired enter/leave observations.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v when v exceeds the current value — a
// high-water mark usable from concurrent observers.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the gauge's current value; 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution of int64 observations. Bucket i
// counts observations v with v <= bounds[i] (and v > bounds[i-1]); one
// implicit overflow bucket counts everything beyond the last bound. Bounds
// are fixed at registration, so two identical runs always fill identical
// buckets — there is no adaptive resizing to leak nondeterminism.
//
// A nil Histogram discards every observation at zero cost.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not strictly increasing at %d (%d after %d)",
				i, bounds[i], bounds[i-1])
		}
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(bounds)+1)}, nil
}

// Observe records one value. The bucket scan is a short linear walk — bucket
// lists are a dozen entries at most — so the enabled path stays
// allocation-free too.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 for a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// multiplying by factor — the standard shape for scan lengths and latencies
// whose distributions span orders of magnitude. start must be positive,
// factor at least 2, n at least 1.
func ExpBuckets(start int64, factor, n int) []int64 {
	if start <= 0 || factor < 2 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid ExpBuckets(%d, %d, %d)", start, factor, n))
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= int64(factor)
	}
	return out
}

// LinearBuckets returns n strictly increasing bounds start, start+width, …
// for distributions with a known narrow range (batch sizes, window counts).
func LinearBuckets(start, width int64, n int) []int64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid LinearBuckets(%d, %d, %d)", start, width, n))
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}
