package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("a/b_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: negative deltas ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	if r.Counter("a/b_total") != c {
		t.Fatal("same name returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("queue/depth")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value %d, want 3", got)
	}
	g.SetMax(10)
	g.SetMax(4)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge high-water %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{10, 20, 40})
	for _, v := range []int64{1, 10, 11, 20, 39, 40, 41, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count %d, want 8", got)
	}
	if got := h.Sum(); got != 1+10+11+20+39+40+41+1000 {
		t.Fatalf("sum %d", got)
	}
	snap := r.Snapshot()
	hv := snap.Histograms[0]
	// le10: {1,10}; le20: {11,20}; le40: {39,40}; +inf: {41,1000}.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (counts %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	// Bounds are fixed by the first registration.
	if again := r.Histogram("lat", []int64{1}); again != h {
		t.Fatal("re-registration returned a different histogram")
	}
}

func TestInvalidRegistrationsPanic(t *testing.T) {
	r := New()
	for name, fn := range map[string]func(){
		"empty name":          func() { r.Counter("") },
		"whitespace name":     func() { r.Gauge("a b") },
		"no bounds":           func() { r.Histogram("h", nil) },
		"non-increasing":      func() { r.Histogram("h2", []int64{5, 5}) },
		"decreasing bounds":   func() { r.Histogram("h3", []int64{5, 1}) },
		"bad exp buckets":     func() { ExpBuckets(0, 2, 3) },
		"bad linear buckets":  func() { LinearBuckets(1, 0, 3) },
		"zero bucket count":   func() { ExpBuckets(1, 2, 0) },
		"factor below double": func() { ExpBuckets(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	if got, want := ExpBuckets(8, 2, 4), []int64{8, 16, 32, 64}; !equalInts(got, want) {
		t.Fatalf("ExpBuckets %v, want %v", got, want)
	}
	if got, want := LinearBuckets(1, 2, 3), []int64{1, 3, 5}; !equalInts(got, want) {
		t.Fatalf("LinearBuckets %v, want %v", got, want)
	}
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotStableEncoding pins the byte-exact text format and the
// sorted-name determinism of a snapshot: registration order must not show in
// the output.
func TestSnapshotStableEncoding(t *testing.T) {
	build := func(reversed bool) *Registry {
		r := New()
		names := []string{"a/first_total", "z/last_total", "m/middle_total"}
		if reversed {
			names = []string{"m/middle_total", "z/last_total", "a/first_total"}
		}
		for i, n := range names {
			r.Counter(n).Add(int64(i) * 0) // create in varying order
		}
		r.Counter("a/first_total").Add(1)
		r.Counter("z/last_total").Add(2)
		r.Counter("m/middle_total").Add(3)
		r.Gauge("g/depth").Set(9)
		r.Histogram("h/scan", []int64{2, 8}).Observe(5)
		return r
	}
	want := "counter a/first_total 1\n" +
		"counter m/middle_total 3\n" +
		"counter z/last_total 2\n" +
		"gauge g/depth 9\n" +
		"histogram h/scan count=1 sum=5 le2=0 le8=1 +inf=0\n"
	for _, reversed := range []bool{false, true} {
		got := build(reversed).Snapshot().Text()
		if got != want {
			t.Fatalf("reversed=%v text snapshot:\n%s\nwant:\n%s", reversed, got, want)
		}
	}
	// JSON is equally order-independent.
	a, err := build(false).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(true).Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("JSON snapshots differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"name": "h/scan"`) {
		t.Fatalf("JSON missing histogram entry:\n%s", a)
	}
}

func TestSnapshotLookupHelpers(t *testing.T) {
	r := New()
	r.Counter("x").Add(4)
	r.Histogram("y", []int64{1}).Observe(0)
	s := r.Snapshot()
	if s.Counter("x") != 4 || s.Counter("absent") != 0 {
		t.Fatal("Counter lookup wrong")
	}
	if s.HistogramCount("y") != 1 || s.HistogramCount("absent") != 0 {
		t.Fatal("HistogramCount lookup wrong")
	}
}

// TestNilRegistryAndInstruments pins the disabled state: a nil registry
// hands out nil instruments and every operation is a no-op.
func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	snap := r.Snapshot()
	if snap.Text() != "" {
		t.Fatalf("nil registry snapshot not empty: %q", snap.Text())
	}
}

// TestDisabledInstrumentsZeroAllocs is the hard contract the hot paths rely
// on: with observability off (nil instruments, nil registry) the
// instrumentation layer performs zero allocations.
func TestDisabledInstrumentsZeroAllocs(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
	)
	bounds := []int64{1, 2, 4}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.SetMax(7)
		h.Observe(9)
		_ = c.Value()
		_ = h.Count()
	}); allocs != 0 {
		t.Fatalf("disabled instruments allocate %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Counter("a")
		_ = r.Gauge("b")
		_ = r.Histogram("c", bounds)
	}); allocs != 0 {
		t.Fatalf("nil registry lookups allocate %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAllocs: even when enabled, Inc/Observe on resolved
// instruments must not allocate — instrument resolution is the only
// allocating step.
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	h := r.Histogram("hist", []int64{4, 16, 64})
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(20)
	}); allocs != 0 {
		t.Fatalf("enabled hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentCounters drives instruments from many goroutines and checks
// exact totals — the guarantee the parallel search and the experiment worker
// pool need for order-independent deterministic snapshots.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("conc")
	h := r.Histogram("conch", []int64{50})
	g := r.Gauge("concg")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
				g.SetMax(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker-1 {
		t.Fatalf("gauge high-water %d, want %d", got, workers*perWorker-1)
	}
}
