package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry owns a namespace of instruments. Instruments are created on first
// use and live for the registry's lifetime; hot paths resolve them once and
// hold the pointers.
//
// A nil *Registry is the disabled state: it hands out nil instruments, whose
// operations are no-ops, so call sites never branch on "is observability on".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		mustValidName(name)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		mustValidName(name)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Bounds are fixed by the first registration; later
// calls return the existing histogram regardless of the bounds argument, so
// every observer of one name shares one bucket layout. Invalid bounds on
// first registration panic — a programmer error, caught by any test that
// touches the call site. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		mustValidName(name)
		var err error
		h, err = newHistogram(bounds)
		if err != nil {
			panic(fmt.Sprintf("metrics: registering %q: %v", name, err))
		}
		r.histograms[name] = h
	}
	return h
}

func mustValidName(name string) {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		panic(fmt.Sprintf("metrics: invalid instrument name %q", name))
	}
}

// CounterValue is one counter's state in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's state in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's state in a snapshot. Counts[i] is the
// number of observations in bucket i (v <= Bounds[i]); the final entry of
// Counts is the overflow bucket.
type HistogramValue struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name
// within each kind. The encoding functions below are pure functions of the
// snapshot's fields, so equal scheduler runs render equal bytes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot. Concurrent writers may race individual atomic loads, but a
// quiesced registry (no writers, the only sensible time to snapshot for
// golden comparison) always renders identically.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Text renders the snapshot in the stable line format
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count=<n> sum=<s> le<b0>=<c0> … +inf=<cK>
//
// one instrument per line, each kind sorted by name — the format the CLI's
// -metrics flag writes and the golden tests compare byte for byte.
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d", h.Name, h.Count, h.Sum)
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, " le%d=%d", bound, h.Counts[i])
		}
		fmt.Fprintf(&b, " +inf=%d\n", h.Counts[len(h.Counts)-1])
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. Field order is fixed by the
// struct definitions and slices are pre-sorted, so the encoding is as
// byte-stable as Text.
func (s *Snapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Counter returns the snapshotted value of the named counter, 0 when absent.
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of the named gauge, 0 when absent.
func (s *Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// HistogramCount returns the snapshotted observation count of the named
// histogram, 0 when absent.
func (s *Snapshot) HistogramCount(name string) int64 {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Count
		}
	}
	return 0
}
