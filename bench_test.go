// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record), plus the ablation benches DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// The per-op workloads are scaled down (studies run tens of iterations per
// op instead of the paper's 25 000) so the full suite completes in minutes;
// the CLI (cmd/ecosched) runs the full-scale versions.
package ecosched_test

import (
	"fmt"
	"testing"

	"ecosched/internal/alloc"
	"ecosched/internal/backfill"
	"ecosched/internal/dp"
	"ecosched/internal/experiments"
	"ecosched/internal/job"
	"ecosched/internal/sim"
	"ecosched/internal/slot"
	"ecosched/internal/strategy"
	"ecosched/internal/workload"
)

// benchIterations is the per-op study size for figure benches.
const benchIterations = 30

// BenchmarkFig2AMPExample regenerates the Section 4 worked example
// (Figs. 2–3): environment construction, vacant-slot derivation, and the
// full AMP + ALP alternative searches.
func BenchmarkFig2AMPExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSection4()
		if err != nil {
			b.Fatal(err)
		}
		if res.AMP.TotalAlternatives() == 0 {
			b.Fatal("no alternatives")
		}
	}
}

// BenchmarkFig4TimeMin regenerates the Fig. 4 study: time minimization under
// the VO budget, ALP vs AMP on identical slot lists.
func BenchmarkFig4TimeMin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		res, err := experiments.RunStudy(experiments.TimeMin, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Kept
	}
}

// BenchmarkFig5Series regenerates the Fig. 5 per-experiment series.
func BenchmarkFig5Series(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		cfg.SeriesLength = benchIterations
		res, err := experiments.RunStudy(experiments.TimeMin, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Kept > 0 && res.AMP.TimeSeries.Len() == 0 {
			b.Fatal("series empty")
		}
	}
}

// BenchmarkFig6CostMin regenerates the Fig. 6 study: cost minimization under
// the occupancy quota.
func BenchmarkFig6CostMin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		if _, err := experiments.RunStudy(experiments.CostMin, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRhoSweep regenerates the Section 6 budget-factor ablation.
func BenchmarkRhoSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		if _, err := experiments.RhoSweep(cfg, []float64{0.8, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// scalingList builds an m-slot paper-style list and a probing job whose cap
// forces a deep scan.
func scalingList(m int, seed uint64) (*slot.List, *job.Job) {
	gen := workload.PaperSlotGenerator()
	gen.CountMin, gen.CountMax = m, m
	list, _, err := gen.Generate(sim.NewRNG(seed))
	if err != nil {
		panic(err)
	}
	j := &job.Job{Name: "probe", Priority: 1, Request: job.ResourceRequest{
		Nodes: 4, Time: 100, MinPerformance: 1, MaxPrice: 2.0}}
	return list, j
}

// BenchmarkALPScaling and BenchmarkAMPScaling back the Section 3 complexity
// claim with wall-clock evidence: doubling m at most doubles the single-
// window search time.
func BenchmarkALPScaling(b *testing.B) {
	for _, m := range []int{1000, 2000, 4000, 8000} {
		list, j := scalingList(m, 7)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alloc.ALP{}.FindWindow(list, j)
			}
		})
	}
}

func BenchmarkAMPScaling(b *testing.B) {
	for _, m := range []int{1000, 2000, 4000, 8000} {
		list, j := scalingList(m, 7)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alloc.AMP{}.FindWindow(list, j)
			}
		})
	}
}

// BenchmarkBackfillScaling measures the baseline's earliest-window probe on
// clusters whose busy structure holds m intervals — the comparison point for
// the quadratic-vs-linear discussion.
func BenchmarkBackfillScaling(b *testing.B) {
	for _, m := range []int{1000, 2000, 4000, 8000} {
		rng := sim.NewRNG(uint64(m))
		cluster, err := backfill.NewCluster(16)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < m; i++ {
			node := i % 16
			start := sim.Time(int64(i/16)*400) + sim.Time(rng.IntBetween(0, 99))
			d := rng.DurationBetween(50, 300)
			if err := cluster.Occupy(node, start, d); err != nil {
				continue
			}
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := cluster.EarliestWindow(8, 250); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAMPPolicyAblation compares the paper's cheapest-N window policy
// against the first-N arrival-order policy (DESIGN.md §5).
func BenchmarkAMPPolicyAblation(b *testing.B) {
	list, j := scalingList(2000, 3)
	for _, pol := range []alloc.WindowPolicy{alloc.CheapestN, alloc.FirstN} {
		b.Run(pol.String(), func(b *testing.B) {
			algo := alloc.AMP{Policy: pol}
			for i := 0; i < b.N; i++ {
				algo.FindWindow(list, j)
			}
		})
	}
}

// benchAlternatives builds a realistic alternatives map for DP benches.
func benchAlternatives(b *testing.B) (*job.Batch, dp.Alternatives) {
	b.Helper()
	sc, err := workload.GenerateScenario(workload.PaperSlotGenerator(), workload.PaperJobGenerator(), sim.NewRNG(11))
	if err != nil {
		b.Fatal(err)
	}
	res, err := alloc.FindAlternatives(alloc.AMP{}, sc.Slots, sc.Batch, alloc.SearchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if !res.AllJobsCovered(sc.Batch) {
		b.Skip("seed gives incomplete coverage")
	}
	return sc.Batch, dp.Alternatives(res.Alternatives)
}

// BenchmarkDPGranularity compares the exact time-axis backward run against
// money-grid variants (DESIGN.md §5 ablation).
func BenchmarkDPGranularity(b *testing.B) {
	batch, alts := benchAlternatives(b)
	limits, err := dp.ComputeLimits(batch, alts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dp.MinimizeTime(batch, alts, limits.Budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, states := range []int{100, 2000} {
		grid := sim.Money(1)
		if g := float64(limits.Budget) / float64(states); g > 1 {
			grid = sim.Money(g)
		}
		b.Run(fmt.Sprintf("grid-states=%d", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Coarse grids may be infeasible; that is the
				// measured trade-off, not an error.
				_, _ = dp.MinimizeTimeGrid(batch, alts, limits.Budget, grid)
			}
		})
	}
}

// BenchmarkDPOptimizers measures the two backward-run problems on realistic
// alternative sets.
func BenchmarkDPOptimizers(b *testing.B) {
	batch, alts := benchAlternatives(b)
	limits, err := dp.ComputeLimits(batch, alts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinimizeTime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dp.MinimizeTime(batch, alts, limits.Budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinimizeCost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dp.MinimizeCost(batch, alts, limits.Quota); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDPEngines compares the two combination-optimizer engines on the
// full per-iteration workload a metascheduler performs — derive B* from T*
// (Eq. 3), then solve the time-minimization policy — on realistic
// paper-workload alternative sets. "frontier" is the production sparse
// engine (one shared backward pass); "dense" is the reference time-axis
// tables (one table per problem). internal/dp's BenchmarkFrontierDP /
// BenchmarkDenseDP measure the same comparison on synthetic large-quota and
// many-alternatives shapes.
func BenchmarkDPEngines(b *testing.B) {
	batch, alts := benchAlternatives(b)
	b.Run("frontier", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fr, err := dp.NewFrontier(batch, alts)
			if err != nil {
				b.Fatal(err)
			}
			limits, err := fr.Limits()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fr.MinimizeTime(limits.Budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			limits, err := dp.ComputeLimitsDense(batch, alts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dp.MinimizeTimeDense(batch, alts, limits.Budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchPasses compares first-window-only search with the full
// multi-pass alternative search (DESIGN.md §5 ablation).
func BenchmarkSearchPasses(b *testing.B) {
	sc, err := workload.GenerateScenario(workload.PaperSlotGenerator(), workload.PaperJobGenerator(), sim.NewRNG(13))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("first-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alloc.FindFirst(alloc.AMP{}, sc.Slots, sc.Batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multi-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alloc.FindAlternatives(alloc.AMP{}, sc.Slots, sc.Batch, alloc.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSlotSubtraction measures the Fig. 1b list surgery in isolation.
func BenchmarkSlotSubtraction(b *testing.B) {
	gen := workload.PaperSlotGenerator()
	gen.CountMin, gen.CountMax = 140, 140
	base, _, err := gen.Generate(sim.NewRNG(17))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := base.Clone()
		target := l.At(i % l.Len())
		mid := target.Start().Add(target.Length() / 4)
		end := mid.Add(target.Length() / 2)
		if err := l.SubtractInterval(target, sim.Interval{Start: mid, End: end}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairnessStudy regenerates the batch-at-once fair-search extension
// comparison (Section 7 future work).
func BenchmarkFairnessStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		if _, _, err := experiments.FairnessStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustnessStudy regenerates the failure-injection strategy
// extension (Section 7 future work, refs [13, 14]).
func BenchmarkRobustnessStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := strategy.RobustnessStudy(strategy.RobustnessConfig{
			Seed:        uint64(i) + 1,
			Iterations:  benchIterations,
			FailureProb: 0.25,
			Policy:      strategy.EarliestFirst,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairSearch compares the per-call cost of the sequential and
// batch-at-once searches on one scenario.
func BenchmarkFairSearch(b *testing.B) {
	sc, err := workload.GenerateScenario(workload.PaperSlotGenerator(), workload.PaperJobGenerator(), sim.NewRNG(19))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alloc.FindAlternatives(alloc.AMP{}, sc.Slots, sc.Batch, alloc.SearchOptions{FirstOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-at-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alloc.FindAlternativesFair(alloc.AMP{}, sc.Slots, sc.Batch, alloc.SearchOptions{FirstOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParetoFront measures the criteria-vector frontier computation on
// realistic alternative sets (Section 2's multi-criteria model).
func BenchmarkParetoFront(b *testing.B) {
	batch, alts := benchAlternatives(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.ParetoFront(batch, alts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicsStudy regenerates the failure-injected metascheduler
// recovery study.
func BenchmarkDynamicsStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.DynamicsStudy(experiments.DynamicsConfig{
			Seed: uint64(i) + 1, Sessions: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineStudy regenerates the backfilling-vs-economic-scheme
// comparison on homogeneous clusters.
func BenchmarkBaselineStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.BaselineStudy(experiments.BaselineConfig{
			Seed: uint64(i) + 1, Trials: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteredAblation regenerates the statistical-vs-clustered slot
// structure comparison.
func BenchmarkClusteredAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.PaperStudyConfig(uint64(i)+1, benchIterations)
		if _, err := experiments.ClusteredAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPipeline measures the whole metascheduler-level dynamics
// study with the speculative parallel search at several worker counts;
// sub-benchmark p1 is the sequential baseline. The schedule is identical for
// every parallelism, so the only difference between sub-benches is wall
// clock. See internal/alloc's BenchmarkParallelSearch for the search-only
// measurement on a low-conflict large batch.
func BenchmarkParallelPipeline(b *testing.B) {
	for _, parallelism := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", parallelism), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.DynamicsStudy(experiments.DynamicsConfig{
					Seed: uint64(i) + 1, Sessions: 3, Parallelism: parallelism,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
