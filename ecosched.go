// Package ecosched is a Go implementation of the slot-selection and
// co-allocation system for economic scheduling in distributed computing
// described by Toporkov et al. (PaCT 2011): the ALP and AMP linear-scan
// window-search algorithms, the multi-pass alternative search with slot
// subtraction, and the dynamic-programming batch optimizer choosing one
// execution alternative per job under a VO budget (B*) or occupancy quota
// (T*).
//
// The package is a facade: it re-exports the stable surface of the internal
// packages so applications need a single import. The typical flow is
//
//	pool  — describe nodes (performance rate, price per time unit)
//	list  — publish vacant slots (or derive them from a Grid)
//	batch — describe jobs (N nodes, etalon time t, min performance P,
//	        price cap C)
//	ScheduleBatch(AMP{}, list, batch, MinimizeTimePolicy) — search
//	        alternatives and pick the optimal combination
//
// See examples/quickstart for a complete runnable program and DESIGN.md for
// the system inventory.
package ecosched

import (
	"fmt"

	"ecosched/internal/alloc"
	"ecosched/internal/codec"
	"ecosched/internal/dp"
	"ecosched/internal/gridsim"
	"ecosched/internal/job"
	"ecosched/internal/metasched"
	"ecosched/internal/resource"
	"ecosched/internal/sim"
	"ecosched/internal/slot"
	"ecosched/internal/strategy"
	"ecosched/internal/trace"
	"ecosched/internal/workload"
)

// Core value types.
type (
	// Time is a point on the simulated time axis (ticks).
	Time = sim.Time
	// Duration is a span of simulated time (ticks).
	Duration = sim.Duration
	// Money is an amount of VO currency.
	Money = sim.Money
	// Interval is a half-open time interval [Start, End).
	Interval = sim.Interval
	// RNG is the deterministic random generator used by all stochastic
	// components.
	RNG = sim.RNG
)

// Resource model.
type (
	// Node is a computational resource with a performance rate and a
	// price per time unit.
	Node = resource.Node
	// Pool is an immutable node collection.
	Pool = resource.Pool
	// PricingModel maps performance to price.
	PricingModel = resource.PricingModel
	// NodeAttributes are the non-performance node characteristics
	// (RAM, disk, OS, capability tags).
	NodeAttributes = resource.Attributes
	// NodeRequirements are the attribute thresholds of a request.
	NodeRequirements = resource.Requirements
)

// Slot substrate.
type (
	// Slot is a vacant span on one node.
	Slot = slot.Slot
	// SlotList is the ordered vacant-slot list both algorithms scan.
	SlotList = slot.List
	// Window is a co-allocated set of N synchronized slots — one
	// execution alternative.
	Window = slot.Window
	// Placement is one task's share of a window.
	Placement = slot.Placement
)

// Job model.
type (
	// Job is an independent parallel application.
	Job = job.Job
	// ResourceRequest is a job's requirements (N, t, P, C, ρ).
	ResourceRequest = job.ResourceRequest
	// Batch is the job set scheduled together in one iteration.
	Batch = job.Batch
)

// Algorithms.
type (
	// Algorithm is a single-window slot search.
	Algorithm = alloc.Algorithm
	// ALP searches with a per-slot price cap.
	ALP = alloc.ALP
	// AMP searches with a whole-job budget.
	AMP = alloc.AMP
	// SearchOptions tunes the multi-pass alternative search.
	SearchOptions = alloc.SearchOptions
	// SearchResult holds the alternatives found for a batch.
	SearchResult = alloc.SearchResult
	// SearchStats counts the work a search performed.
	SearchStats = alloc.Stats
)

// Optimizer.
type (
	// Plan is a chosen combination: one window per job.
	Plan = dp.Plan
	// Choice is one job's selected window.
	Choice = dp.Choice
	// Alternatives maps job names to their windows.
	Alternatives = dp.Alternatives
	// Limits bundles the derived batch limits T* and B*.
	Limits = dp.Limits
	// FrontierDP is the sparse dominance-pruned combination optimizer.
	FrontierDP = dp.Frontier
)

// Environment and generators.
type (
	// Grid is the non-dedicated resource environment: nodes plus booked
	// local tasks and VO reservations.
	Grid = gridsim.Grid
	// GridTask is a booked occupancy interval.
	GridTask = gridsim.Task
	// SlotGenerator draws the paper's Section 5 slot lists.
	SlotGenerator = workload.SlotGenerator
	// JobGenerator draws the paper's Section 5 job batches.
	JobGenerator = workload.JobGenerator
	// Scenario is one generated scheduling-iteration input.
	Scenario = workload.Scenario
)

// Metascheduler.
type (
	// Scheduler is the VO-level iterative metascheduler.
	Scheduler = metasched.Scheduler
	// SchedulerConfig parameterizes the metascheduler.
	SchedulerConfig = metasched.Config
	// IterationReport summarizes one scheduling iteration.
	IterationReport = metasched.IterationReport
	// DemandPricing scales published prices by grid utilization.
	DemandPricing = metasched.DemandPricing
	// TraceRecorder records scheduling decisions for inspection.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded scheduling decision.
	TraceEvent = trace.Event
)

// Scheduling strategies (failure-aware execution, Section 7 extension).
type (
	// Strategy pairs each job's chosen window with fallback versions.
	Strategy = strategy.Strategy
	// StrategyReport summarizes a strategy execution under failures.
	StrategyReport = strategy.Report
	// NodeFailure is one injected node failure event.
	NodeFailure = strategy.Failure
)

// Re-exported constructors.
var (
	// NewPool builds a validated node pool.
	NewPool = resource.NewPool
	// NewSlotList builds an ordered slot list.
	NewSlotList = slot.NewList
	// NewSlot builds a slot on a node at the node's price.
	NewSlot = slot.New
	// NewBatch builds a validated, priority-ordered batch.
	NewBatch = job.NewBatch
	// NewRNG builds a deterministic generator.
	NewRNG = sim.NewRNG
	// NewGrid builds an idle grid over a pool.
	NewGrid = gridsim.New
	// NewScheduler builds a metascheduler over a grid.
	NewScheduler = metasched.New
	// FindAlternatives runs the multi-pass alternative search.
	FindAlternatives = alloc.FindAlternatives
	// FindAlternativesParallel is FindAlternatives with the per-job window
	// scans executed speculatively on a worker pool; the result is
	// bit-identical to the sequential search for every input.
	FindAlternativesParallel = alloc.FindAlternativesParallel
	// FindAlternativesFair is the batch-at-once search variant: each
	// round commits the globally earliest window across the whole batch.
	FindAlternativesFair = alloc.FindAlternativesFair
	// FindFirst returns only the earliest window per job.
	FindFirst = alloc.FindFirst
	// BuildStrategy assembles a failure-aware strategy from a plan and
	// its search result.
	BuildStrategy = strategy.Build
	// NewTraceRecorder builds a bounded decision recorder.
	NewTraceRecorder = trace.NewRecorder
	// EncodeScenario and DecodeScenario (de)serialize scenarios as JSON.
	EncodeScenario = codec.EncodeScenario
	DecodeScenario = codec.DecodeScenario
	// ComputeLimits derives T* (Eq. 2) and B* (Eq. 3).
	ComputeLimits = dp.ComputeLimits
	// MinimizeTime solves min T(s̄) s.t. C(s̄) ≤ B*.
	MinimizeTime = dp.MinimizeTime
	// MinimizeCost solves min C(s̄) s.t. T(s̄) ≤ T*.
	MinimizeCost = dp.MinimizeCost
	// NewFrontier builds the sparse Pareto-frontier DP engine once per
	// batch; its methods answer every optimization problem and the limit
	// derivation from one shared backward pass.
	NewFrontier = dp.NewFrontier
	// ParetoFront computes every Pareto-optimal (time, cost) combination.
	ParetoFront = dp.ParetoFront
	// WeightedSum picks the frontier plan minimizing a weighted criterion.
	WeightedSum = dp.WeightedSum
	// Lexicographic picks a frontier endpoint (time-first or cost-first).
	Lexicographic = dp.Lexicographic
	// PaperSlotGenerator and PaperJobGenerator return the Section 5
	// workload configurations.
	PaperSlotGenerator = workload.PaperSlotGenerator
	PaperJobGenerator  = workload.PaperJobGenerator
	// PaperPricing returns the Section 5 pricing model.
	PaperPricing = resource.PaperPricing
)

// Metascheduler policies.
const (
	// MinimizeTimePolicy optimizes min T(s̄) under the VO budget.
	MinimizeTimePolicy = metasched.MinimizeTime
	// MinimizeCostPolicy optimizes min C(s̄) under the occupancy quota.
	MinimizeCostPolicy = metasched.MinimizeCost
)

// ScheduleResult bundles the outcome of ScheduleBatch.
type ScheduleResult struct {
	// Search holds every alternative found.
	Search *SearchResult
	// Limits are the derived batch limits T* and B*.
	Limits Limits
	// Plan is the chosen combination.
	Plan *Plan
}

// ScheduleBatch runs the complete two-phase scheme on a vacant-slot list:
// multi-pass alternative search with algo, limit derivation per Eqs. (2)–(3),
// and the backward-run optimization for the given policy. It fails when some
// job has no alternative (the caller postpones the batch) or when no
// combination satisfies the derived limit.
func ScheduleBatch(algo Algorithm, list *SlotList, batch *Batch, policy metasched.Policy) (*ScheduleResult, error) {
	search, err := alloc.FindAlternatives(algo, list, batch, alloc.SearchOptions{})
	if err != nil {
		return nil, err
	}
	if !search.AllJobsCovered(batch) {
		return nil, fmt.Errorf("ecosched: not every job has an execution alternative; postpone the batch")
	}
	alts := dp.Alternatives(search.Alternatives)
	// One sparse frontier pass answers the limit derivation and the policy
	// run; see internal/dp/frontier.go.
	fr, err := dp.NewFrontier(batch, alts)
	if err != nil {
		return nil, err
	}
	limits, err := fr.Limits()
	if err != nil {
		return nil, err
	}
	var plan *dp.Plan
	switch policy {
	case metasched.MinimizeCost:
		plan, err = fr.MinimizeCost(limits.Quota)
	default:
		plan, err = fr.MinimizeTime(limits.Budget)
	}
	if err != nil {
		return nil, err
	}
	return &ScheduleResult{Search: search, Limits: limits, Plan: plan}, nil
}
