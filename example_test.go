package ecosched_test

import (
	"fmt"

	"ecosched"
)

// ExampleScheduleBatch demonstrates the complete two-phase scheme on a tiny
// deterministic environment: alternative search with AMP, limit derivation,
// and time minimization under the VO budget.
func ExampleScheduleBatch() {
	pool, _ := ecosched.NewPool([]*ecosched.Node{
		{Name: "cpu1", Performance: 1, Price: 2},
		{Name: "cpu2", Performance: 2, Price: 4},
	})
	list := ecosched.NewSlotList([]ecosched.Slot{
		ecosched.NewSlot(pool.Node(0), 0, 400),
		ecosched.NewSlot(pool.Node(1), 0, 400),
	})
	batch, _ := ecosched.NewBatch([]*ecosched.Job{
		{Name: "job1", Priority: 1, Request: ecosched.ResourceRequest{
			Nodes: 2, Time: 100, MinPerformance: 1, MaxPrice: 4}},
	})
	res, err := ecosched.ScheduleBatch(ecosched.AMP{}, list, batch, ecosched.MinimizeTimePolicy)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w := res.Plan.Choices[0].Window
	fmt.Printf("window [%v, %v) on %d nodes, cost %v\n", w.Start(), w.End(), w.Size(), w.Cost())
	// Output:
	// window [0, 100) on 2 nodes, cost 400.00
}

// ExampleALP_FindWindow shows the per-slot price cap in action: the
// expensive node is invisible to ALP.
func ExampleALP_FindWindow() {
	cheap := &ecosched.Node{Name: "cheap", Performance: 1, Price: 2}
	pricey := &ecosched.Node{Name: "pricey", Performance: 1, Price: 9}
	if _, err := ecosched.NewPool([]*ecosched.Node{cheap, pricey}); err != nil {
		fmt.Println("error:", err)
		return
	}
	list := ecosched.NewSlotList([]ecosched.Slot{
		ecosched.NewSlot(cheap, 0, 300),
		ecosched.NewSlot(pricey, 0, 300),
	})
	j := &ecosched.Job{Name: "j", Priority: 1, Request: ecosched.ResourceRequest{
		Nodes: 1, Time: 100, MinPerformance: 1, MaxPrice: 5}}
	w, _, ok := ecosched.ALP{}.FindWindow(list, j)
	fmt.Println("found:", ok, "node:", w.NodeLabels()[0])
	// Output:
	// found: true node: cheap
}

// ExampleAMP_FindWindow shows the whole-job budget: AMP mixes an expensive
// slot into the window as long as the total fits S = C·t·N.
func ExampleAMP_FindWindow() {
	cheap := &ecosched.Node{Name: "cheap", Performance: 1, Price: 2}
	pricey := &ecosched.Node{Name: "pricey", Performance: 1, Price: 7}
	if _, err := ecosched.NewPool([]*ecosched.Node{cheap, pricey}); err != nil {
		fmt.Println("error:", err)
		return
	}
	list := ecosched.NewSlotList([]ecosched.Slot{
		ecosched.NewSlot(cheap, 0, 300),
		ecosched.NewSlot(pricey, 0, 300),
	})
	// Budget S = 5·100·2 = 1000 ≥ (2+7)·100.
	j := &ecosched.Job{Name: "j", Priority: 1, Request: ecosched.ResourceRequest{
		Nodes: 2, Time: 100, MinPerformance: 1, MaxPrice: 5}}
	w, _, ok := ecosched.AMP{}.FindWindow(list, j)
	fmt.Println("found:", ok, "cost:", w.Cost(), "within budget:", w.Cost().LessEq(j.Request.Budget()))
	// Output:
	// found: true cost: 900.00 within budget: true
}
